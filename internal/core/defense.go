package core

import (
	"sort"

	"repro/internal/lockstep"
)

// LockstepResult is the Section 5.2 defense evaluation: the paper proposes
// that its measurements provide ground truth for training lockstep-
// behaviour detectors; here the detector runs over the store-side
// device-resolved install stream and is scored against the simulator's
// known worker population.
type LockstepResult struct {
	Groups         int
	FlaggedDevices int
	Eval           lockstep.Evaluation
}

// buildLockstep mixes the incentivized install log with organic decoy
// traffic (World.DetectionEvents, the shared ground-truth path the
// scenario sweep also scores against) and runs the lockstep detector.
func (s *Study) buildLockstep() LockstepResult {
	events, truth := s.World.DetectionEvents()
	groups := lockstep.Detect(events, lockstep.DefaultConfig())
	flagged := 0
	for _, g := range groups {
		flagged += len(g.Devices)
	}
	return LockstepResult{
		Groups:         len(groups),
		FlaggedDevices: flagged,
		Eval:           lockstep.Evaluate(groups, truth),
	}
}

// DisclosureRow is one entry of the Section 5.1 responsible-disclosure
// list: a popular advertised app (5M+ installs) and the contact address
// scraped from its store profile.
type DisclosureRow struct {
	Package     string
	InstallBin  int64
	Developer   string
	ContactMail string
}

// buildDisclosure reproduces the paper's disclosure selection: of the
// advertised apps, contact those with 5M+ public installs (136 of 922 in
// the paper).
func (s *Study) buildDisclosure(views []*appView) []DisclosureRow {
	ds := s.Crawler.Dataset()
	var rows []DisclosureRow
	for _, v := range views {
		profile, ok := ds.Profile(v.pkg)
		if !ok || profile.InstallBin < 5_000_000 {
			continue
		}
		rows = append(rows, DisclosureRow{
			Package:     v.pkg,
			InstallBin:  profile.InstallBin,
			Developer:   profile.DeveloperName,
			ContactMail: profile.Email,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].InstallBin != rows[j].InstallBin {
			return rows[i].InstallBin > rows[j].InstallBin
		}
		return rows[i].Package < rows[j].Package
	})
	return rows
}
