package core

import (
	"fmt"
	"sort"

	"repro/internal/dates"
	"repro/internal/device"
	"repro/internal/honeyapp"
	"repro/internal/iip"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/randx"
	"repro/internal/textgen"
)

// HoneyAppPackage is the package name of the instrumented voice-memos app.
const HoneyAppPackage = "edu.research.voicememos"

// honeyTarget is the number of installs purchased per IIP (paper: 500).
const honeyTarget = 500

// honeyIIPs are the platforms the paper purchased from: one vetted
// (Fyber) and two unvetted (ayeT-Studios, RankApp).
var honeyIIPs = []string{iip.Fyber, iip.AyetStudios, iip.RankApp}

// overdelivery is the ratio of delivered to purchased installs per
// platform (626 / 550 / 503 out of 500 in the paper).
var overdelivery = map[string]float64{
	iip.Fyber:       1.252,
	iip.AyetStudios: 1.100,
	iip.RankApp:     1.006,
}

// HoneyCampaign summarizes one purchased campaign, with every field
// derived the way the paper derived it: console analytics for delivery,
// collected telemetry for engagement and automation signals.
type HoneyCampaign struct {
	IIP    string
	Vetted bool
	// ConsoleInstalls is what the Play developer console reports.
	ConsoleInstalls int
	// TelemetryInstalls is how many installs ever sent telemetry (opened
	// the app at least once); the RankApp gap is the paper's missing 45%.
	TelemetryInstalls int
	// Engaged is how many telemetry installs clicked the record button.
	Engaged int
	// DayAfterEngaged is how many clicked the record button a day or
	// more after their first open (retention).
	DayAfterEngaged int
	// CompletionHours is how long the platform took to deliver.
	CompletionHours float64
	// Automation signals from telemetry.
	EmulatorInstalls int
	CloudASNInstalls int
	// Device farm: largest group of telemetry installs sharing a /24
	// block, and how many of those are rooted devices on a single SSID.
	FarmInstalls       int
	FarmRootedSameSSID int
	// Affiliate-app analysis over workers' installed-package lists.
	MoneyKeywordShare float64
	TopAffiliate      string
	TopAffiliateShare float64
}

// HoneyResults aggregates the Section 3 experiment.
type HoneyResults struct {
	Campaigns []HoneyCampaign
	// TotalInstalls across all campaigns (paper: 1,679).
	TotalInstalls int
	// PublicInstallBin is the honey app's public install count after the
	// campaigns (paper: 0 -> 1,000+).
	PublicInstallBin int64
	// OrganicDuringCampaigns verifies attribution: the console reported
	// no organic installs while campaigns ran.
	OrganicDuringCampaigns int64
	// UniqueInstalledApps observed across workers' devices (paper:
	// 17,454 across its 1,679 installs).
	UniqueInstalledApps int
}

// runHoneyExperiment publishes the honey app, purchases 500 no-activity
// installs from each of the three IIPs through the normal platform flow,
// and reproduces the Section 3 analyses from the collected telemetry plus
// developer-console analytics.
func (s *Study) runHoneyExperiment() (*HoneyResults, error) {
	w := s.World
	r := randx.Derive(w.Cfg.Seed, "honey")

	w.Store.AddDeveloper(playstore.Developer{
		ID: "research", Name: "University Research Group", Country: "USA",
	})
	if err := w.Store.Publish(playstore.Listing{
		Package: HoneyAppPackage, Title: "Voice Memos Saver", Genre: "Tools",
		Developer: "research", Released: w.Cfg.Window.Start.AddDays(-7),
	}); err != nil {
		return nil, err
	}

	collect := honeyapp.NewServer()
	telURL, err := s.serve(collect.Handler())
	if err != nil {
		return nil, err
	}
	client := &honeyapp.Client{BaseURL: telURL}

	results := &HoneyResults{}
	uniqueApps := map[string]bool{}
	type campaignMeta struct {
		name      string
		vetted    bool
		delivered int
		hours     float64
		pool      []*device.Worker
		perm      []int
	}
	var metas []campaignMeta

	// Purchase and deliver, one campaign at a time (the paper spreads
	// campaigns so no two deliver simultaneously).
	campaignDay := w.Cfg.Window.Start
	for _, name := range honeyIIPs {
		platform := w.Platforms[name]
		docs := iip.Documentation{}
		if platform.Vetted {
			docs = iip.Documentation{TaxID: "TAX-research", BankAccount: "IBAN-research"}
		}
		if err := platform.RegisterDeveloper("research", docs); err != nil {
			return nil, err
		}
		delivered := int(float64(honeyTarget) * overdelivery[name])
		deposit := platform.GrossCostPerInstall(0.06)*float64(delivered)*1.2 + platform.MinDepositUSD
		if err := platform.Deposit("research", deposit); err != nil {
			return nil, err
		}
		spec := honeyOfferSpec(w.Cfg.Window)
		spec.Target = delivered
		campaign, err := platform.LaunchCampaign(spec)
		if err != nil {
			return nil, err
		}

		hours := float64(delivered) / platform.PacePerHour
		pool := w.Pools[name]
		perm := r.Perm(len(pool))
		for i := 0; i < delivered; i++ {
			worker := pool[perm[i%len(perm)]]
			day := campaignDay.AddDays(int(hours) / 24 * i / maxInt(1, delivered))
			if _, err := platform.RecordCompletion(campaign.OfferID, day); err != nil {
				return nil, fmt.Errorf("honey completion on %s: %w", name, err)
			}
			if err := w.Store.RecordInstall(HoneyAppPackage, playstore.Install{
				Day:        day,
				Source:     playstore.SourceReferral,
				FraudScore: worker.FraudScore(),
			}); err != nil {
				return nil, err
			}
			for _, pkg := range worker.InstalledApps {
				uniqueApps[pkg] = true
			}

			// Telemetry arrives only from installs that actually open
			// the app. Automated devices (emulators, cloud VMs, device
			// farms) always open — that is how they trigger the
			// attribution postback — so the missing telemetry comes
			// from spoofed completions elsewhere in the crowd.
			openP := worker.OpenProb
			if worker.Emulator || worker.ASN == device.ASNCloud || worker.FarmID > 0 {
				openP = 1
			}
			if !r.Bool(openP) {
				continue
			}
			hour := int(hours * float64(i) / float64(delivered))
			app := honeyapp.Install(client, fmt.Sprintf("%s-i%04d", name, i), name, honeyapp.DeviceInfo{
				Build:         worker.Build,
				Rooted:        worker.Rooted,
				Emulator:      worker.Emulator,
				SSIDHash:      worker.SSIDHash,
				IPBlock:       worker.IPBlock + ".99", // client truncates to /24
				ASNName:       worker.ASNName,
				CloudASN:      worker.ASN == device.ASNCloud,
				InstalledApps: worker.InstalledApps,
			})
			if err := app.Open(hour); err != nil {
				return nil, err
			}
			if r.Bool(worker.EngageProb) {
				if err := app.ClickRecord(hour); err != nil {
					return nil, err
				}
			}
			if r.Bool(worker.ReturnProb) {
				if err := app.ClickRecord(hour + 24); err != nil {
					return nil, err
				}
			}
		}
		metas = append(metas, campaignMeta{
			name: name, vetted: platform.Vetted, delivered: delivered,
			hours: hours, pool: pool, perm: perm,
		})
		results.TotalInstalls += delivered
		campaignDay = campaignDay.AddDays(2 + int(hours)/24)
	}

	// Analyze the collected telemetry, per campaign.
	events := collect.Events()
	for _, meta := range metas {
		c := HoneyCampaign{
			IIP:             meta.name,
			Vetted:          meta.vetted,
			ConsoleInstalls: meta.delivered,
			CompletionHours: meta.hours,
		}
		analyzeTelemetry(&c, events)
		c.MoneyKeywordShare, c.TopAffiliate, c.TopAffiliateShare =
			affiliateShares(meta.pool, meta.perm, meta.delivered)
		results.Campaigns = append(results.Campaigns, c)
	}

	exact, err := w.Store.ExactInstalls(HoneyAppPackage)
	if err != nil {
		return nil, err
	}
	results.PublicInstallBin = playstore.InstallBin(exact)
	results.UniqueInstalledApps = len(uniqueApps)

	console, err := w.Store.Console(HoneyAppPackage, w.Cfg.Window.Start, campaignDay)
	if err != nil {
		return nil, err
	}
	for _, d := range console {
		results.OrganicDuringCampaigns += d.Organic
	}
	return results, nil
}

// analyzeTelemetry fills a campaign's engagement and automation fields
// from the collected events, exactly as the paper's server-side analysis
// did.
func analyzeTelemetry(c *HoneyCampaign, events []honeyapp.Event) {
	firstOpen := map[string]int{}
	clicked := map[string]bool{}
	dayAfter := map[string]bool{}
	emulator := map[string]bool{}
	cloud := map[string]bool{}
	blocks := map[string]map[string]bool{}       // /24 -> install IDs
	rootedBySSID := map[string]map[string]bool{} // block|ssid -> rooted install IDs
	for _, ev := range events {
		if ev.IIP != c.IIP {
			continue
		}
		switch ev.Kind {
		case honeyapp.KindOpen:
			if _, ok := firstOpen[ev.InstallID]; !ok {
				firstOpen[ev.InstallID] = ev.HourOffset
			}
			if ev.Device.Emulator {
				emulator[ev.InstallID] = true
			}
			if ev.Device.CloudASN {
				cloud[ev.InstallID] = true
			}
			b := blocks[ev.Device.IPBlock]
			if b == nil {
				b = map[string]bool{}
				blocks[ev.Device.IPBlock] = b
			}
			b[ev.InstallID] = true
			if ev.Device.Rooted {
				key := ev.Device.IPBlock + "|" + ev.Device.SSIDHash
				rb := rootedBySSID[key]
				if rb == nil {
					rb = map[string]bool{}
					rootedBySSID[key] = rb
				}
				rb[ev.InstallID] = true
			}
		case honeyapp.KindRecordClick:
			clicked[ev.InstallID] = true
			if open, ok := firstOpen[ev.InstallID]; ok && ev.HourOffset >= open+24 {
				dayAfter[ev.InstallID] = true
			}
		}
	}
	c.TelemetryInstalls = len(firstOpen)
	c.Engaged = len(clicked)
	c.DayAfterEngaged = len(dayAfter)
	c.EmulatorInstalls = len(emulator)
	c.CloudASNInstalls = len(cloud)
	for _, ids := range blocks {
		if len(ids) >= 10 && len(ids) > c.FarmInstalls {
			c.FarmInstalls = len(ids)
		}
	}
	for _, ids := range rootedBySSID {
		if len(ids) > c.FarmRootedSameSSID {
			c.FarmRootedSameSSID = len(ids)
		}
	}
}

// affiliateShares computes the money-keyword and top-affiliate-app shares
// over the workers who delivered a campaign.
func affiliateShares(pool []*device.Worker, perm []int, delivered int) (moneyShare float64, top string, topShare float64) {
	if delivered == 0 {
		return 0, "", 0
	}
	money := 0
	counts := map[string]int{}
	for i := 0; i < delivered; i++ {
		w := pool[perm[i%len(perm)]]
		if w.HasMoneyApp() {
			money++
		}
		seen := map[string]bool{}
		for _, pkg := range w.InstalledApps {
			if textgen.HasMoneyKeyword(pkg) && !seen[pkg] {
				counts[pkg]++
				seen[pkg] = true
			}
		}
	}
	type kv struct {
		pkg string
		n   int
	}
	arr := make([]kv, 0, len(counts))
	for pkg, n := range counts {
		arr = append(arr, kv{pkg, n})
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].n != arr[j].n {
			return arr[i].n > arr[j].n
		}
		return arr[i].pkg < arr[j].pkg
	})
	if len(arr) > 0 {
		top = arr[0].pkg
		topShare = float64(arr[0].n) / float64(delivered)
	}
	return float64(money) / float64(delivered), top, topShare
}

// honeyOfferSpec is the no-activity offer purchased for the honey app.
func honeyOfferSpec(window dates.Range) iip.CampaignSpec {
	return iip.CampaignSpec{
		Developer:     "research",
		AppPackage:    HoneyAppPackage,
		Description:   "Install and Launch",
		Type:          offers.NoActivity,
		UserPayoutUSD: 0.06,
		Target:        honeyTarget,
		Window:        window,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
