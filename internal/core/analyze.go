package core

import "strings"

// analyze derives every table and figure from the collected measurements.
func (s *Study) analyze() error {
	raw := s.Milker.Offers()
	cos := classifyOffers(raw)
	views := buildAppViews(cos)
	vetted, unvetted := groupViews(views)

	descs := map[string]bool{}
	for _, o := range cos {
		descs[strings.ToLower(o.Description)] = true
	}
	s.Results.Dataset = DatasetSummary{
		Offers:             len(cos),
		UniqueApps:         len(views),
		UniqueDescriptions: len(descs),
		MilkDays:           len(s.Milker.MilkDays()),
		CrawlDays:          len(s.Crawler.Dataset().Days()),
	}

	s.Results.Table1 = s.probeTable1()
	s.Results.Table2 = s.buildTable2()
	s.Results.Table3 = buildTable3(cos)
	s.Results.Table4 = s.buildTable4(cos)

	var err error
	if s.Results.Table5, err = s.buildTable5(vetted, unvetted); err != nil {
		return err
	}
	if s.Results.Table6, err = s.buildTable6(vetted, unvetted); err != nil {
		return err
	}
	if s.Results.Table7, err = s.buildTable7(vetted, unvetted); err != nil {
		return err
	}
	s.Results.Table8 = s.buildTable8(vetted)

	s.Results.Figure2 = s.buildFigure2()
	s.Results.Figure4 = s.buildFigure4()
	s.Results.Figure5 = s.buildFigure5(views)
	if s.Results.Figure6, err = s.buildFigure6(views); err != nil {
		return err
	}

	s.Results.Enforcement = s.buildEnforcement(vetted, unvetted)
	s.Results.Arbitrage = buildArbitrage(views, vetted, unvetted)
	s.Results.Lockstep = s.buildLockstep()
	s.Results.Disclosure = s.buildDisclosure(views)
	return nil
}
