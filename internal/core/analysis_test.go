package core

import (
	"testing"

	"repro/internal/offers"
)

func TestAnalysisRecomputesResults(t *testing.T) {
	s := tinyStudy(t)
	a := s.NewAnalysis()

	if got := a.Table3(); len(got) != len(s.Results.Table3) {
		t.Errorf("Table3 recompute size mismatch")
	} else {
		for i := range got {
			if got[i] != s.Results.Table3[i] {
				t.Errorf("Table3 row %d: %+v != %+v", i, got[i], s.Results.Table3[i])
			}
		}
	}
	t5, err := a.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if t5 != s.Results.Table5 {
		t.Errorf("Table5 recompute mismatch: %+v vs %+v", t5, s.Results.Table5)
	}
	if got := a.Table8(); got != s.Results.Table8 {
		t.Errorf("Table8 mismatch")
	}
	if got := a.Arbitrage(); got != s.Results.Arbitrage {
		t.Errorf("Arbitrage mismatch")
	}
	if got := a.Enforcement(); got != s.Results.Enforcement {
		t.Errorf("Enforcement mismatch")
	}
	f6, err := a.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if f6.AtLeast5["activity"] != s.Results.Figure6.AtLeast5["activity"] {
		t.Errorf("Figure6 mismatch")
	}
	if len(a.Offers()) != s.Results.Dataset.Offers {
		t.Errorf("classified offers = %d, want %d", len(a.Offers()), s.Results.Dataset.Offers)
	}
}

func TestClassifierPerfectOnDataset(t *testing.T) {
	// The measurement pipeline's rule classifier must agree with the
	// campaigns' ground-truth labels on the milked dataset (the
	// generator/classifier consistency contract, end to end through the
	// HTTP walls and the proxy).
	s := tinyStudy(t)
	raw := s.Milker.Offers()
	if len(raw) == 0 {
		t.Fatal("empty dataset")
	}
	truthByKey := map[string]offers.Type{}
	arbByKey := map[string]bool{}
	for _, c := range s.World.Campaigns {
		o := offers.Offer{IIP: c.IIP, AppPackage: c.App, Description: c.Spec.Description}
		truthByKey[o.Key()] = c.Spec.Type
		arbByKey[o.Key()] = c.Spec.Arbitrage
	}
	cls := offers.RuleClassifier{}
	for _, o := range raw {
		truth, ok := truthByKey[o.Key()]
		if !ok {
			t.Fatalf("milked offer %s has no matching campaign", o.ID)
		}
		if got := cls.Classify(o.Description); got != truth {
			t.Errorf("offer %q classified %v, truth %v", o.Description, got, truth)
		}
		if got := offers.IsArbitrage(o.Description); got != arbByKey[o.Key()] {
			t.Errorf("offer %q arbitrage %v, truth %v", o.Description, got, arbByKey[o.Key()])
		}
	}
}

func TestMilkedPayoutsMatchCampaigns(t *testing.T) {
	// Point normalization must round-trip: the payout recovered from the
	// wall's point values matches the campaign's user payout to within
	// rounding across every affiliate point system.
	s := tinyStudy(t)
	// Several campaigns can share an (IIP, app, description) key — the
	// milker dedups them — so any of their payouts is acceptable.
	payoutsByKey := map[string][]float64{}
	for _, c := range s.World.Campaigns {
		o := offers.Offer{IIP: c.IIP, AppPackage: c.App, Description: c.Spec.Description}
		payoutsByKey[o.Key()] = append(payoutsByKey[o.Key()], c.Spec.UserPayoutUSD)
	}
	for _, o := range s.Milker.Offers() {
		ok := false
		for _, want := range payoutsByKey[o.Key()] {
			diff := o.PayoutUSD - want
			if diff < 0 {
				diff = -diff
			}
			// Coarsest point system is 100 points/USD: half-point
			// rounding gives at most $0.005 error.
			if diff <= 0.006 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("offer %s payout %.4f matches no campaign %v", o.ID, o.PayoutUSD, payoutsByKey[o.Key()])
		}
	}
}

func TestGroupCellFrac(t *testing.T) {
	if (GroupCell{}).Frac() != 0 {
		t.Error("empty cell should be 0")
	}
	if got := (GroupCell{N: 4, Positive: 1}).Frac(); got != 0.25 {
		t.Errorf("Frac = %g", got)
	}
}
