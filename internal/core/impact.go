package core

import (
	"errors"
	"fmt"

	"repro/internal/dates"
	"repro/internal/stats"
)

// GroupCell is one (app set, outcome) cell: how many apps were analyzed
// and how many showed the positive outcome.
type GroupCell struct {
	N        int
	Positive int
}

// Frac is the positive fraction.
func (c GroupCell) Frac() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Positive) / float64(c.N)
}

// Table returns the cell as the (negative, positive) counts of a
// contingency-table row.
func (c GroupCell) row() (uint64, uint64) {
	return uint64(c.N - c.Positive), uint64(c.Positive)
}

// GroupOutcome is one impact comparison (Tables 5, 6, 7): baseline vs.
// vetted vs. unvetted app sets with the two chi-squared tests the paper
// runs.
type GroupOutcome struct {
	Name     string
	Baseline GroupCell
	Vetted   GroupCell
	Unvetted GroupCell
	// VettedTest and UnvettedTest are "vetted vs. baseline" and
	// "unvetted vs. baseline" chi-squared tests of independence.
	VettedTest   stats.ChiSquareResult
	UnvettedTest stats.ChiSquareResult
}

// finishOutcome runs the two chi-squared tests. A degenerate table (an
// outcome that never or always happens in a small world) yields a zero
// result rather than an error, matching how the analysis would simply
// report "test not applicable".
func finishOutcome(o *GroupOutcome) error {
	b0, b1 := o.Baseline.row()
	v0, v1 := o.Vetted.row()
	u0, u1 := o.Unvetted.row()
	run := func(t stats.Table2x2) (stats.ChiSquareResult, error) {
		res, err := stats.ChiSquareIndependence(t)
		if errors.Is(err, stats.ErrDegenerateTable) {
			return stats.ChiSquareResult{P: 1}, nil
		}
		return res, err
	}
	var err error
	if o.VettedTest, err = run(stats.Table2x2{A0: b0, A1: b1, B0: v0, B1: v1}); err != nil {
		return fmt.Errorf("%s vetted test: %w", o.Name, err)
	}
	if o.UnvettedTest, err = run(stats.Table2x2{A0: b0, A1: b1, B0: u0, B1: u1}); err != nil {
		return fmt.Errorf("%s unvetted test: %w", o.Name, err)
	}
	return nil
}

// baselineWindow is the comparison window for baseline apps: the average
// campaign duration (25 days), as in the paper.
func (s *Study) baselineWindow() dates.Range {
	start := s.World.Cfg.Window.Start
	return dates.Range{Start: start, End: start.AddDays(25)}
}

// buildTable5 measures install-count increases (paper Table 5): for each
// app, did the public install bin grow between campaign start and end?
func (s *Study) buildTable5(vetted, unvetted []*appView) (GroupOutcome, error) {
	ds := s.Crawler.Dataset()
	out := GroupOutcome{Name: "install-count increase"}

	bw := s.baselineWindow()
	for _, pkg := range s.World.Baseline {
		out.Baseline.N++
		if ds.BinIncreased(pkg, bw) {
			out.Baseline.Positive++
		}
	}
	count := func(views []*appView, cell *GroupCell) {
		for _, v := range views {
			cell.N++
			if ds.BinIncreased(v.pkg, v.campaign) {
				cell.Positive++
			}
		}
	}
	count(vetted, &out.Vetted)
	count(unvetted, &out.Unvetted)
	return out, finishOutcome(&out)
}

// buildTable6 measures top-chart appearances (paper Table 6). Apps already
// present in a chart at the start of their campaign (or, for baseline, at
// the first crawl) are excluded to minimize bias.
func (s *Study) buildTable6(vetted, unvetted []*appView) (GroupOutcome, error) {
	ds := s.Crawler.Dataset()
	out := GroupOutcome{Name: "top-chart appearance"}
	crawlDays := ds.Days()
	if len(crawlDays) == 0 {
		return out, fmt.Errorf("no crawl data")
	}
	firstCrawl := crawlDays[0]

	bw := s.baselineWindow()
	for _, pkg := range s.World.Baseline {
		if ds.InAnyChartOn(firstCrawl, pkg) {
			continue // excluded: already charting at the start
		}
		out.Baseline.N++
		if ds.InAnyChartDuring(dates.Range{Start: bw.Start + 1, End: bw.End}, pkg) {
			out.Baseline.Positive++
		}
	}
	count := func(views []*appView, cell *GroupCell) {
		for _, v := range views {
			if ds.InAnyChartOn(nearestCrawl(crawlDays, v.campaign.Start), v.pkg) {
				continue // excluded: charting before the campaign
			}
			cell.N++
			if ds.InAnyChartDuring(dates.Range{Start: v.campaign.Start + 1, End: v.campaign.End}, v.pkg) {
				cell.Positive++
			}
		}
	}
	count(vetted, &out.Vetted)
	count(unvetted, &out.Unvetted)
	return out, finishOutcome(&out)
}

// nearestCrawl returns the last crawl day at or before the given day (or
// the first crawl day when none precedes it).
func nearestCrawl(days []dates.Date, day dates.Date) dates.Date {
	best := days[0]
	for _, d := range days {
		if d <= day {
			best = d
		}
	}
	return best
}

// buildTable7 measures funding raised after campaigns (paper Table 7),
// over the apps whose developers match in the Crunchbase snapshot.
func (s *Study) buildTable7(vetted, unvetted []*appView) (GroupOutcome, error) {
	ds := s.Crawler.Dataset()
	out := GroupOutcome{Name: "funding raised"}

	matchAndCheck := func(pkg string, after dates.Date, cell *GroupCell) {
		profile, ok := ds.Profile(pkg)
		if !ok {
			return
		}
		org, ok := s.World.Crunch.Match(profile.DeveloperName, profile.Website)
		if !ok {
			return
		}
		cell.N++
		if len(s.World.Crunch.RoundsAfter(org.ID, after)) > 0 {
			cell.Positive++
		}
	}
	for _, pkg := range s.World.Baseline {
		matchAndCheck(pkg, s.World.Cfg.Window.Start, &out.Baseline)
	}
	for _, v := range vetted {
		matchAndCheck(v.pkg, v.campaign.Start, &out.Vetted)
	}
	for _, v := range unvetted {
		matchAndCheck(v.pkg, v.campaign.Start, &out.Unvetted)
	}
	return out, finishOutcome(&out)
}

// Table8 breaks down the offers of funded vetted apps (paper Table 8).
type Table8 struct {
	// NumFunded is the number of vetted apps that raised funding after
	// their campaigns (30 in the paper).
	NumFunded int
	// NoActivityShare / ActivityShare are the fractions of funded apps
	// advertising each offer class (they overlap, as in the paper).
	NoActivityShare float64
	ActivityShare   float64
	// Average payouts of those offers.
	NoActivityAvgPayout float64
	ActivityAvgPayout   float64
}

func (s *Study) buildTable8(vetted []*appView) Table8 {
	ds := s.Crawler.Dataset()
	var t Table8
	nNoAct, nAct := 0, 0
	sumNoAct, cntNoAct := 0.0, 0
	sumAct, cntAct := 0.0, 0
	for _, v := range vetted {
		profile, ok := ds.Profile(v.pkg)
		if !ok {
			continue
		}
		org, ok := s.World.Crunch.Match(profile.DeveloperName, profile.Website)
		if !ok || len(s.World.Crunch.RoundsAfter(org.ID, v.campaign.Start)) == 0 {
			continue
		}
		t.NumFunded++
		hasNoAct, hasAct := false, false
		for _, o := range v.offers {
			if o.Type.IsActivity() {
				hasAct = true
				sumAct += o.PayoutUSD
				cntAct++
			} else {
				hasNoAct = true
				sumNoAct += o.PayoutUSD
				cntNoAct++
			}
		}
		if hasNoAct {
			nNoAct++
		}
		if hasAct {
			nAct++
		}
	}
	t.NoActivityShare = frac(nNoAct, t.NumFunded)
	t.ActivityShare = frac(nAct, t.NumFunded)
	t.NoActivityAvgPayout = avg(sumNoAct, cntNoAct)
	t.ActivityAvgPayout = avg(sumAct, cntAct)
	return t
}
