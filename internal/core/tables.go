package core

import (
	"sort"

	"repro/internal/iip"
	"repro/internal/offers"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table1Row characterizes one IIP (paper Table 1), with the vetted /
// unvetted label derived from the registration probe rather than asserted.
type Table1Row struct {
	Name    string
	HomeURL string
	// Vetted is true when registering without documentation fails.
	Vetted bool
	// MinDepositUSD observed during the probe.
	MinDepositUSD float64
}

// probeTable1 replays the paper's methodology for Table 1: attempt to
// register as a developer with each IIP and see whether documentation is
// demanded.
func (s *Study) probeTable1() []Table1Row {
	var rows []Table1Row
	for _, p := range s.World.PlatformsSorted() {
		err := p.RegisterDeveloper("probe-"+p.Name, iip.Documentation{})
		rows = append(rows, Table1Row{
			Name:          p.Name,
			HomeURL:       p.HomeURL,
			Vetted:        err != nil,
			MinDepositUSD: p.MinDepositUSD,
		})
	}
	return rows
}

// Table2Row is one instrumented affiliate app with its integration matrix
// (paper Table 2).
type Table2Row struct {
	Package     string
	InstallsBin int64
	// Integrations maps IIP name -> integrated.
	Integrations map[string]bool
}

func (s *Study) buildTable2() []Table2Row {
	matrix := s.Milker.WallMatrix()
	var rows []Table2Row
	for _, a := range s.World.Affiliates {
		integ := map[string]bool{}
		for _, name := range iip.StandardNames {
			integ[name] = false
		}
		for _, name := range matrix[a.Package] {
			integ[name] = true
		}
		rows = append(rows, Table2Row{
			Package:      a.Package,
			InstallsBin:  a.InstallsBin,
			Integrations: integ,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].InstallsBin != rows[j].InstallsBin {
			return rows[i].InstallsBin > rows[j].InstallsBin
		}
		return rows[i].Package < rows[j].Package
	})
	return rows
}

// Table3Row is the prevalence and average payout of one offer type (paper
// Table 3).
type Table3Row struct {
	Type          offers.Type
	Share         float64 // fraction of all offers
	AveragePayout float64
}

func buildTable3(cos []ClassifiedOffer) []Table3Row {
	total := len(cos)
	if total == 0 {
		return nil
	}
	count := map[offers.Type]int{}
	payout := map[offers.Type]float64{}
	for _, o := range cos {
		count[o.Type]++
		payout[o.Type] += o.PayoutUSD
	}
	// The paper's aggregate "Activity" row is available separately via
	// ActivityAggregate; the table proper carries the four base types.
	rows := []Table3Row{
		{Type: offers.NoActivity, Share: frac(count[offers.NoActivity], total), AveragePayout: avg(payout[offers.NoActivity], count[offers.NoActivity])},
	}
	rows = append(rows,
		Table3Row{Type: offers.Usage, Share: frac(count[offers.Usage], total), AveragePayout: avg(payout[offers.Usage], count[offers.Usage])},
		Table3Row{Type: offers.Registration, Share: frac(count[offers.Registration], total), AveragePayout: avg(payout[offers.Registration], count[offers.Registration])},
		Table3Row{Type: offers.Purchase, Share: frac(count[offers.Purchase], total), AveragePayout: avg(payout[offers.Purchase], count[offers.Purchase])},
	)
	return rows
}

// ActivityAggregate computes the paper's combined "Activity" row from the
// classified dataset.
func ActivityAggregate(cos []ClassifiedOffer) Table3Row {
	total := len(cos)
	n, sum := 0, 0.0
	for _, o := range cos {
		if o.Type.IsActivity() {
			n++
			sum += o.PayoutUSD
		}
	}
	return Table3Row{Type: offers.Usage, Share: frac(n, total), AveragePayout: avg(sum, n)}
}

// Table4Row summarizes one IIP's offers and advertised apps (paper
// Table 4).
type Table4Row struct {
	IIP              string
	Vetted           bool
	MedianPayout     float64
	NoActivityShare  float64
	ActivityShare    float64
	NumApps          int
	NumDevelopers    int
	NumCountries     int
	NumGenres        int
	MedianInstallBin float64
	MedianAgeDays    float64
}

func (s *Study) buildTable4(cos []ClassifiedOffer) []Table4Row {
	ds := s.Crawler.Dataset()
	byIIP := map[string][]ClassifiedOffer{}
	for _, o := range cos {
		byIIP[o.IIP] = append(byIIP[o.IIP], o)
	}
	var rows []Table4Row
	for _, name := range iip.StandardNames {
		group := byIIP[name]
		if len(group) == 0 {
			continue
		}
		row := Table4Row{IIP: name, Vetted: sim.IsVetted(name)}
		var payouts []float64
		apps := map[string]bool{}
		devs := map[string]bool{}
		countries := map[string]bool{}
		genres := map[string]bool{}
		var bins, ages []float64
		noAct := 0
		for _, o := range group {
			payouts = append(payouts, o.PayoutUSD)
			if !o.Type.IsActivity() {
				noAct++
			}
			if apps[o.AppPackage] {
				continue
			}
			apps[o.AppPackage] = true
			profile, ok := ds.Profile(o.AppPackage)
			if !ok {
				continue
			}
			devs[profile.DeveloperID] = true
			countries[profile.Country] = true
			genres[profile.Genre] = true
			if bin, ok := ds.BinAround(o.AppPackage, o.FirstSeen); ok {
				bins = append(bins, float64(bin))
			}
			ages = append(ages, float64(int(o.FirstSeen)-profile.ReleasedDay))
		}
		row.MedianPayout = stats.Median(payouts)
		row.NoActivityShare = frac(noAct, len(group))
		row.ActivityShare = 1 - row.NoActivityShare
		row.NumApps = len(apps)
		row.NumDevelopers = len(devs)
		row.NumCountries = len(countries)
		row.NumGenres = len(genres)
		row.MedianInstallBin = stats.Median(bins)
		row.MedianAgeDays = stats.Median(ages)
		rows = append(rows, row)
	}
	return rows
}

// Figure2Row records whether an IIP publicly advertises app-store-metric
// manipulation (paper Figure 2: RankApp does).
type Figure2Row struct {
	IIP                 string
	Vetted              bool
	AdvertisesRankBoost bool
}

func (s *Study) buildFigure2() []Figure2Row {
	var rows []Figure2Row
	for _, p := range s.World.PlatformsSorted() {
		rows = append(rows, Figure2Row{
			IIP:                 p.Name,
			Vetted:              p.Vetted,
			AdvertisesRankBoost: p.ClaimsManipulation(),
		})
	}
	return rows
}

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

func avg(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
