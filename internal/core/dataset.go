package core

import (
	"sort"

	"repro/internal/dates"
	"repro/internal/offers"
	"repro/internal/sim"
)

// ClassifiedOffer is a monitored offer with the pipeline's labels
// attached: offer type from the description classifier and the arbitrage
// flag from the arbitrage detector. The ground-truth fields of the
// embedded Offer stay unread except by classifier-accuracy checks.
type ClassifiedOffer struct {
	offers.Offer
	Type      offers.Type
	Arbitrage bool
}

// classifyOffers labels the milked dataset with the rule classifier.
func classifyOffers(raw []offers.Offer) []ClassifiedOffer {
	cls := offers.RuleClassifier{}
	out := make([]ClassifiedOffer, 0, len(raw))
	for _, o := range raw {
		out = append(out, ClassifiedOffer{
			Offer:     o,
			Type:      cls.Classify(o.Description),
			Arbitrage: offers.IsArbitrage(o.Description),
		})
	}
	return out
}

// appView aggregates everything the pipeline observed about one advertised
// app.
type appView struct {
	pkg    string
	offers []ClassifiedOffer
	// iips carrying the app.
	iips map[string]bool
	// campaign is the union of observed offer windows.
	campaign dates.Range
}

func (v *appView) onVetted() bool {
	for name := range v.iips {
		if sim.IsVetted(name) {
			return true
		}
	}
	return false
}

func (v *appView) onUnvetted() bool {
	for name := range v.iips {
		if !sim.IsVetted(name) {
			return true
		}
	}
	return false
}

func (v *appView) hasActivity() bool {
	for _, o := range v.offers {
		if o.Type.IsActivity() {
			return true
		}
	}
	return false
}

func (v *appView) hasArbitrage() bool {
	for _, o := range v.offers {
		if o.Arbitrage {
			return true
		}
	}
	return false
}

// buildAppViews groups classified offers by advertised app.
func buildAppViews(cos []ClassifiedOffer) []*appView {
	byPkg := map[string]*appView{}
	for _, o := range cos {
		v, ok := byPkg[o.AppPackage]
		if !ok {
			v = &appView{
				pkg:      o.AppPackage,
				iips:     map[string]bool{},
				campaign: dates.Range{Start: o.FirstSeen, End: o.LastSeen},
			}
			byPkg[o.AppPackage] = v
		}
		v.offers = append(v.offers, o)
		v.iips[o.IIP] = true
		if o.FirstSeen < v.campaign.Start {
			v.campaign.Start = o.FirstSeen
		}
		if o.LastSeen > v.campaign.End {
			v.campaign.End = o.LastSeen
		}
	}
	out := make([]*appView, 0, len(byPkg))
	for _, v := range byPkg {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pkg < out[j].pkg })
	return out
}

// groupViews partitions app views into the vetted and unvetted analysis
// sets (an app on both platform classes lands in both, as in the paper
// where N_vetted + N_unvetted > 922).
func groupViews(views []*appView) (vetted, unvetted []*appView) {
	for _, v := range views {
		if v.onVetted() {
			vetted = append(vetted, v)
		}
		if v.onUnvetted() {
			unvetted = append(unvetted, v)
		}
	}
	return vetted, unvetted
}
