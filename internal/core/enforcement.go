package core

// EnforcementResult captures the Section 5.2 analysis: how often the Play
// Store's install filtering visibly removed installs.
type EnforcementResult struct {
	// Per-group fractions of apps whose public install count ever
	// decreased during the crawl (paper: 0% baseline and vetted, ~2%
	// unvetted).
	BaselineDecreased GroupCell
	VettedDecreased   GroupCell
	UnvettedDecreased GroupCell
	// HoneyInstallsFiltered is how many of the honey app's purchased
	// installs were removed (paper: none).
	HoneyInstallsFiltered int64
}

func (s *Study) buildEnforcement(vetted, unvetted []*appView) EnforcementResult {
	ds := s.Crawler.Dataset()
	var res EnforcementResult
	for _, pkg := range s.World.Baseline {
		res.BaselineDecreased.N++
		if ds.BinEverDecreased(pkg) {
			res.BaselineDecreased.Positive++
		}
	}
	for _, v := range vetted {
		res.VettedDecreased.N++
		if ds.BinEverDecreased(v.pkg) {
			res.VettedDecreased.Positive++
		}
	}
	for _, v := range unvetted {
		res.UnvettedDecreased.N++
		if ds.BinEverDecreased(v.pkg) {
			res.UnvettedDecreased.Positive++
		}
	}
	if s.Results.Section3 != nil {
		console, err := s.World.Store.Console(HoneyAppPackage, s.World.Cfg.Window.Start, s.World.Cfg.Window.End)
		if err == nil {
			for _, d := range console {
				res.HoneyInstallsFiltered += d.Removed
			}
		}
	}
	return res
}

// ArbitrageResult captures the Section 4.3.2 arbitrage analysis.
type ArbitrageResult struct {
	// Total fraction of advertised apps using arbitrage offers (3.9% in
	// the paper: 36 of 922).
	Total GroupCell
	// Vetted/Unvetted splits (7% and 2% in the paper).
	Vetted   GroupCell
	Unvetted GroupCell
}

func buildArbitrage(views, vetted, unvetted []*appView) ArbitrageResult {
	var res ArbitrageResult
	for _, v := range views {
		res.Total.N++
		if v.hasArbitrage() {
			res.Total.Positive++
		}
	}
	for _, v := range vetted {
		res.Vetted.N++
		if v.hasArbitrage() {
			res.Vetted.Positive++
		}
	}
	for _, v := range unvetted {
		res.Unvetted.N++
		if v.hasArbitrage() {
			res.Unvetted.Positive++
		}
	}
	return res
}
