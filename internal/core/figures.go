package core

import (
	"fmt"

	"repro/internal/apk"
	"repro/internal/dates"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/stats"
)

// figure4Edges are the install-count histogram bins of paper Figure 4.
var figure4Edges = []float64{0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// figure4Labels mirror the paper's x-axis labels.
var figure4Labels = []string{
	"0-1k", "1k-10k", "10k-100k", "100k-1M", "1M-10M", "10M-100M",
	"100M-1000M", "1000M+",
}

// buildFigure4 histograms the baseline apps' public install counts from
// the first crawl.
func (s *Study) buildFigure4() []stats.HistogramBin {
	ds := s.Crawler.Dataset()
	var samples []float64
	for _, pkg := range s.World.Baseline {
		series := ds.BinSeries(pkg)
		if len(series) == 0 {
			continue
		}
		samples = append(samples, float64(series[0].Bin))
	}
	return stats.Histogram(samples, figure4Edges, figure4Labels)
}

// CaseStudy is a Figure 5 panel: one app's chart percentile over time
// around its campaign window.
type CaseStudy struct {
	Package string
	Chart   string
	// OfferKinds are the classified types of the app's offers.
	OfferKinds []offers.Type
	Campaign   dates.Range
	Points     []CasePoint
}

// CasePoint is one crawled observation.
type CasePoint struct {
	Day        dates.Date
	Rank       int
	Percentile float64 // 0 when absent
}

// buildFigure5 selects the two case-study shapes of paper Figure 5: an app
// with registration/usage offers entering the top-games chart during its
// campaign, and an app with purchase offers entering top-grossing.
func (s *Study) buildFigure5(views []*appView) []CaseStudy {
	ds := s.Crawler.Dataset()
	var out []CaseStudy

	pick := func(chart string, want func(*appView) bool) {
		var best *appView
		bestDays := 0
		for _, v := range views {
			if !want(v) {
				continue
			}
			// The case study must have entered the chart during its
			// campaign while being absent on every crawl before it.
			present := false
			for _, day := range ds.Days() {
				if day <= v.campaign.Start && ds.RankOn(chart, day, v.pkg) > 0 {
					present = true
					break
				}
			}
			if present {
				continue
			}
			inDays := 0
			for _, day := range ds.Days() {
				if day > v.campaign.Start && day <= v.campaign.End && ds.RankOn(chart, day, v.pkg) > 0 {
					inDays++
				}
			}
			if inDays > bestDays {
				bestDays = inDays
				best = v
			}
		}
		if best == nil {
			return
		}
		cs := CaseStudy{Package: best.pkg, Chart: chart, Campaign: best.campaign}
		seen := map[offers.Type]bool{}
		for _, o := range best.offers {
			if !seen[o.Type] {
				seen[o.Type] = true
				cs.OfferKinds = append(cs.OfferKinds, o.Type)
			}
		}
		for _, p := range ds.RankSeries(chart, best.pkg) {
			cs.Points = append(cs.Points, CasePoint{
				Day:        p.Day,
				Rank:       p.Rank,
				Percentile: playstore.ChartPercentile(p.Rank, s.World.Store.ChartSizeNow()),
			})
		}
		out = append(out, cs)
	}

	// Case (a): engagement-manipulating offers lift a game into
	// top-games (the paper's TREBEL).
	pick(playstore.ChartTopGames, func(v *appView) bool {
		hasEng := false
		for _, o := range v.offers {
			if o.Type == offers.Registration || o.Type == offers.Usage {
				hasEng = true
			}
		}
		return hasEng
	})
	// Case (b): purchase offers lift an app into top-grossing (the
	// paper's World on Fire).
	pick(playstore.ChartTopGrossing, func(v *appView) bool {
		for _, o := range v.offers {
			if o.Type == offers.Purchase {
				return true
			}
		}
		return false
	})
	return out
}

// Figure6 carries the ad-library CDFs of paper Figure 6.
type Figure6 struct {
	// Samples of unique-ad-library counts per app set.
	Baseline   []float64
	Activity   []float64 // apps with at least one activity offer
	NoActivity []float64 // apps with only no-activity offers
	Vetted     []float64
	Unvetted   []float64
	// AtLeast5 shares (the paper's headline: 60% activity vs 25%
	// no-activity vs 35% baseline; 55% vetted vs 20% unvetted).
	AtLeast5 map[string]float64
}

// CDF evaluates the named sample set's ECDF at integer x values 0..max.
func (f Figure6) CDF(set string, max int) []float64 {
	var samples []float64
	switch set {
	case "baseline":
		samples = f.Baseline
	case "activity":
		samples = f.Activity
	case "noactivity":
		samples = f.NoActivity
	case "vetted":
		samples = f.Vetted
	case "unvetted":
		samples = f.Unvetted
	}
	e := stats.NewECDF(samples)
	out := make([]float64, max+1)
	for x := 0; x <= max; x++ {
		out[x] = e.At(float64(x))
	}
	return out
}

// buildFigure6 downloads APKs over HTTP, runs the library detector, and
// groups unique-ad-library counts by offer behaviour and platform class.
func (s *Study) buildFigure6(views []*appView) (Figure6, error) {
	f := Figure6{AtLeast5: map[string]float64{}}
	count := func(pkg string) (float64, error) {
		a, err := s.Crawler.DownloadAPK(pkg)
		if err != nil {
			return 0, fmt.Errorf("figure 6: %w", err)
		}
		return float64(apk.CountAdLibraries(a)), nil
	}
	for _, pkg := range s.World.Baseline {
		n, err := count(pkg)
		if err != nil {
			return f, err
		}
		f.Baseline = append(f.Baseline, n)
	}
	for _, v := range views {
		n, err := count(v.pkg)
		if err != nil {
			return f, err
		}
		if v.hasActivity() {
			f.Activity = append(f.Activity, n)
		} else {
			f.NoActivity = append(f.NoActivity, n)
		}
		if v.onVetted() {
			f.Vetted = append(f.Vetted, n)
		}
		if v.onUnvetted() {
			f.Unvetted = append(f.Unvetted, n)
		}
	}
	f.AtLeast5["baseline"] = stats.FractionAtLeast(f.Baseline, 5)
	f.AtLeast5["activity"] = stats.FractionAtLeast(f.Activity, 5)
	f.AtLeast5["noactivity"] = stats.FractionAtLeast(f.NoActivity, 5)
	f.AtLeast5["vetted"] = stats.FractionAtLeast(f.Vetted, 5)
	f.AtLeast5["unvetted"] = stats.FractionAtLeast(f.Unvetted, 5)
	return f, nil
}
