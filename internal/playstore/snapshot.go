package playstore

import (
	"fmt"
	"sort"

	"repro/internal/binenc"
	"repro/internal/dates"
)

// snapshotVersion guards the store snapshot wire format.
const snapshotVersion = 1

// EncodeSnapshot serializes the store's complete state — catalog,
// developers, every app's dense per-day metrics and rolling window, the
// full chart history, the configured scoring/size, and the enforcer —
// into a canonical byte string: encoding the same state always yields the
// same bytes (maps are emitted in sorted order, apps in publication
// order). Equivalence tests therefore compare whole stores by comparing
// snapshots, and DecodeSnapshot rebuilds a store that behaves
// bit-identically under further RecordX/StepDay calls.
func (s *Store) EncodeSnapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()

	enc := binenc.NewEnc(1 << 16)
	enc.U8(snapshotVersion)
	enc.Varint(int64(s.today))
	enc.Varint(int64(s.chartSize))
	enc.U8(uint8(s.scoring))

	if s.enforcer != nil {
		enc.Bool(true)
		enc.Blob(s.enforcer.EncodeState())
	} else {
		enc.Bool(false)
	}

	devs := make([]*Developer, 0, len(s.devs))
	for _, d := range s.devs {
		devs = append(devs, d)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	enc.Uvarint(uint64(len(devs)))
	for _, d := range devs {
		enc.Str(string(d.ID))
		enc.Str(d.Name)
		enc.Str(d.Country)
		enc.Str(d.Website)
		enc.Str(d.Email)
		enc.Bool(d.Public)
	}

	enc.Uvarint(uint64(len(s.pkgs)))
	for _, pkg := range s.pkgs {
		sh := s.shardFor(pkg)
		sh.mu.RLock()
		encodeApp(enc, sh.apps[pkg])
		sh.mu.RUnlock()
	}

	names := make([]string, 0, len(s.history))
	for name := range s.history {
		names = append(names, name)
	}
	sort.Strings(names)
	enc.Uvarint(uint64(len(names)))
	for _, name := range names {
		h := s.history[name]
		days := make([]dates.Date, 0, len(h))
		for d := range h {
			days = append(days, d)
		}
		sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
		enc.Str(name)
		enc.Uvarint(uint64(len(days)))
		for _, d := range days {
			enc.Varint(int64(d))
			entries := h[d]
			enc.Uvarint(uint64(len(entries)))
			for _, e := range entries {
				enc.Varint(int64(e.Rank))
				enc.Str(e.Package)
				enc.F64(e.Score)
			}
		}
	}
	return enc.Bytes()
}

func encodeApp(enc *binenc.Enc, a *app) {
	enc.Str(a.pkg)
	enc.Str(a.title)
	enc.Str(a.genre)
	enc.Str(string(a.dev))
	enc.Varint(int64(a.released))
	enc.Varint(a.installs)
	enc.Varint(int64(a.base))
	enc.Varint(int64(a.winEnd))
	enc.Varint(a.win.installs)
	enc.Varint(a.win.referral)
	enc.Varint(a.win.sessions)
	enc.Varint(a.win.sessionSec)
	enc.Varint(a.win.dau)
	// Rows are emitted in the seed AoS field order, transposed back out of
	// the columns, so the wire format (and every committed golden built on
	// it) is unchanged by the SoA layout.
	enc.Uvarint(uint64(a.n))
	ar := a.ar
	for j := a.off; j < a.off+a.n; j++ {
		enc.Varint(ar.organic[j])
		enc.Varint(ar.referral[j])
		enc.Varint(ar.removed[j])
		enc.F64(ar.fraudSum[j])
		enc.Varint(ar.sessions[j])
		enc.Varint(ar.sessionSec[j])
		enc.F64(ar.revenue[j])
		enc.Varint(ar.activeUser[j])
	}
}

// DecodeSnapshot rebuilds a store from EncodeSnapshot output, enforcer
// included. The returned store re-encodes to the identical byte string.
func DecodeSnapshot(data []byte) (*Store, error) {
	dec := binenc.NewDec(data)
	if v := dec.U8(); dec.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("playstore: unsupported snapshot version %d", v)
	}
	s := New(dates.Date(dec.Varint()))
	s.chartSize = int(dec.Varint())
	s.scoring = ChartScoring(dec.U8())

	if dec.Bool() {
		blob := dec.Blob()
		if dec.Err() == nil {
			e, err := DecodeEnforcer(blob)
			if err != nil {
				return nil, err
			}
			s.enforcer = e
		}
	}

	nDevs := dec.Uvarint()
	for i := uint64(0); i < nDevs && dec.Err() == nil; i++ {
		d := Developer{
			ID:      DeveloperID(dec.Str()),
			Name:    dec.Str(),
			Country: dec.Str(),
			Website: dec.Str(),
			Email:   dec.Str(),
			Public:  dec.Bool(),
		}
		cp := d
		s.devs[d.ID] = &cp
	}

	nApps := dec.Uvarint()
	for i := uint64(0); i < nApps && dec.Err() == nil; i++ {
		a, err := decodeApp(dec, s)
		if err != nil {
			return nil, err
		}
		if _, ok := s.devs[a.dev]; !ok {
			return nil, fmt.Errorf("playstore: snapshot app %s references %w: %s", a.pkg, ErrUnknownDeveloper, a.dev)
		}
		sh := s.shardFor(a.pkg)
		if _, ok := sh.apps[a.pkg]; ok {
			return nil, fmt.Errorf("playstore: snapshot %w: %s", ErrDuplicateApp, a.pkg)
		}
		sh.apps[a.pkg] = a
		s.pkgs = append(s.pkgs, a.pkg)
	}

	nCharts := dec.Uvarint()
	for i := uint64(0); i < nCharts && dec.Err() == nil; i++ {
		name := dec.Str()
		nDays := dec.Uvarint()
		for j := uint64(0); j < nDays && dec.Err() == nil; j++ {
			day := dates.Date(dec.Varint())
			nEntries := dec.Uvarint()
			// Each entry costs at least 10 bytes, so a declared count
			// beyond the remaining input is corrupt — reject it before
			// allocating.
			if dec.Err() != nil || nEntries > uint64(dec.Remaining()) {
				return nil, fmt.Errorf("playstore: decoding snapshot charts: %w", binenc.ErrTooLong)
			}
			entries := make([]ChartEntry, 0, nEntries)
			for k := uint64(0); k < nEntries && dec.Err() == nil; k++ {
				entries = append(entries, ChartEntry{
					Rank:    int(dec.Varint()),
					Package: dec.Str(),
					Score:   dec.F64(),
				})
			}
			// Days arrive in ascending order, so the last day written
			// leaves s.charts holding the latest entries, exactly as a
			// sequence of live StepDay calls would.
			s.setChartLocked(name, day, entries)
		}
	}
	if err := dec.Done(); err != nil {
		return nil, fmt.Errorf("playstore: decoding snapshot: %w", err)
	}
	return s, nil
}

// decodeApp rebuilds one app row-by-row off the wire, allocating its
// column range in the owning shard's arena (the package name decodes
// first, so the shard is known before any day data is read).
func decodeApp(dec *binenc.Dec, s *Store) (*app, error) {
	pkg := dec.Str()
	a := &app{
		pkg:      pkg,
		ar:       &s.shardFor(pkg).cols,
		title:    dec.Str(),
		genre:    dec.Str(),
		dev:      DeveloperID(dec.Str()),
		released: dates.Date(dec.Varint()),
		installs: dec.Varint(),
		base:     dates.Date(dec.Varint()),
		winEnd:   dates.Date(dec.Varint()),
		win: winInts{
			installs:   dec.Varint(),
			referral:   dec.Varint(),
			sessions:   dec.Varint(),
			sessionSec: dec.Varint(),
			dau:        dec.Varint(),
		},
	}
	nDays := dec.Uvarint()
	if dec.Err() != nil {
		return nil, fmt.Errorf("playstore: decoding app: %w", dec.Err())
	}
	// Each day slot costs at least 22 bytes on the wire; reject counts the
	// input cannot possibly hold before allocating.
	if nDays > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("playstore: decoding app %s days: %w", a.pkg, binenc.ErrTooLong)
	}
	if nDays > 0 {
		ar := a.ar
		a.off = ar.alloc(int(nDays))
		a.n = int(nDays)
		a.room = int(nDays)
		for j := a.off; j < a.off+a.n; j++ {
			ar.organic[j] = dec.Varint()
			ar.referral[j] = dec.Varint()
			ar.removed[j] = dec.Varint()
			ar.fraudSum[j] = dec.F64()
			ar.sessions[j] = dec.Varint()
			ar.sessionSec[j] = dec.Varint()
			ar.revenue[j] = dec.F64()
			ar.activeUser[j] = dec.Varint()
		}
	}
	if dec.Err() != nil {
		return nil, fmt.Errorf("playstore: decoding app %s: %w", a.pkg, dec.Err())
	}
	return a, nil
}
