package playstore

import (
	"errors"
	"testing"

	"repro/internal/dates"
)

func handleFixture(t *testing.T) (*Store, AppHandle) {
	t.Helper()
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	if err := s.Publish(Listing{Package: "com.h.app", Title: "H", Genre: "Puzzle", Developer: "d"}); err != nil {
		t.Fatal(err)
	}
	h, err := s.AppHandle("com.h.app")
	if err != nil {
		t.Fatal(err)
	}
	return s, h
}

func TestAppHandleResolution(t *testing.T) {
	s, h := handleFixture(t)
	if !h.Valid() || h.Package() != "com.h.app" {
		t.Fatalf("handle not resolved: valid=%v pkg=%q", h.Valid(), h.Package())
	}
	if _, err := s.AppHandle("com.missing"); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown package error = %v, want ErrUnknownApp", err)
	}
	if (AppHandle{}).Valid() {
		t.Fatal("zero handle reports valid")
	}
}

// TestAppHandleMatchesStorePath drives the same event stream through the
// string-keyed store API and through a handle batch, and requires
// identical observable state — the handle path is a pure lookup/lock
// hoist, never a semantic fork.
func TestAppHandleMatchesStorePath(t *testing.T) {
	sA := New(dates.StudyStart)
	sA.AddDeveloper(Developer{ID: "d"})
	sB := New(dates.StudyStart)
	sB.AddDeveloper(Developer{ID: "d"})
	for _, s := range []*Store{sA, sB} {
		if err := s.Publish(Listing{Package: "x", Title: "X", Genre: "Puzzle", Developer: "d"}); err != nil {
			t.Fatal(err)
		}
	}
	day := dates.StudyStart

	// Store path.
	if err := sA.RecordInstall("x", Install{Day: day, Source: SourceReferral, FraudScore: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := sA.RecordInstallBatch("x", day, 10, SourceOrganic, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := sA.RecordSession("x", Session{Day: day, Seconds: 120}); err != nil {
		t.Fatal(err)
	}
	if err := sA.RecordSessionBatch("x", day, 5, 60); err != nil {
		t.Fatal(err)
	}
	if err := sA.RecordPurchase("x", Purchase{Day: day, USD: 1.99}); err != nil {
		t.Fatal(err)
	}

	// Handle path, one lock for the whole (app, day) batch.
	h, err := sB.AppHandle("x")
	if err != nil {
		t.Fatal(err)
	}
	h.Lock()
	h.RecordInstallLocked(Install{Day: day, Source: SourceReferral, FraudScore: 0.4})
	h.RecordInstallBatchLocked(day, 10, SourceOrganic, 0.05)
	h.RecordSessionLocked(Session{Day: day, Seconds: 120})
	h.RecordSessionBatchLocked(day, 5, 60)
	h.RecordPurchaseLocked(Purchase{Day: day, USD: 1.99})
	// Zero-count batches are no-ops on both paths.
	h.RecordInstallBatchLocked(day, 0, SourceOrganic, 0.9)
	h.RecordSessionBatchLocked(day, 0, 999)
	h.Unlock()

	for _, s := range []*Store{sA, sB} {
		s.StepDay(day)
	}
	nA, _ := sA.ExactInstalls("x")
	nB, _ := sB.ExactInstalls("x")
	if nA != nB {
		t.Fatalf("exact installs diverge: store=%d handle=%d", nA, nB)
	}
	cA, err := sA.Console("x", day, day)
	if err != nil {
		t.Fatal(err)
	}
	cB, err := sB.Console("x", day, day)
	if err != nil {
		t.Fatal(err)
	}
	if len(cA) != 1 || cA[0] != cB[0] {
		t.Fatalf("console diverges: %+v vs %+v", cA, cB)
	}
	for _, name := range ChartNames {
		a, b := sA.Chart(name), sB.Chart(name)
		if len(a) != len(b) {
			t.Fatalf("chart %s sizes diverge: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("chart %s diverges at %d: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

// TestAppHandleSurvivesLaterPublishes locks the pointer stability the
// engine relies on: handles resolved before further Publish calls keep
// writing to the same row.
func TestAppHandleSurvivesLaterPublishes(t *testing.T) {
	s, h := handleFixture(t)
	for i := 0; i < 64; i++ {
		if err := s.Publish(Listing{
			Package: "com.filler." + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Title:   "F", Genre: "Puzzle", Developer: "d",
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.Lock()
	h.RecordInstallBatchLocked(dates.StudyStart, 7, SourceOrganic, 0.05)
	h.Unlock()
	n, err := s.ExactInstalls("com.h.app")
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("installs through stale-looking handle = %d, want 7", n)
	}
}

// TestAppHandleRecordPathZeroAlloc pins the steady-state handle record
// path at zero allocations per event: once an app's day slot exists, a
// full install+session+purchase batch must not touch the heap.
func TestAppHandleRecordPathZeroAlloc(t *testing.T) {
	_, h := handleFixture(t)
	day := dates.StudyStart
	// Warm the dense day slot so the measured runs are steady-state.
	h.Lock()
	h.RecordInstallBatchLocked(day, 1, SourceOrganic, 0.05)
	h.Unlock()
	allocs := testing.AllocsPerRun(200, func() {
		h.Lock()
		h.RecordInstallLocked(Install{Day: day, Source: SourceReferral, FraudScore: 0.3})
		h.RecordInstallBatchLocked(day, 3, SourceOrganic, 0.05)
		h.RecordSessionLocked(Session{Day: day, Seconds: 90})
		h.RecordSessionBatchLocked(day, 2, 60)
		h.RecordPurchaseLocked(Purchase{Day: day, USD: 0.99})
		h.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("steady-state handle record path allocates %.1f/op, want 0", allocs)
	}
}
