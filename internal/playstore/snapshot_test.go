package playstore

import (
	"bytes"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// buildSnapshotFixture assembles a store with developers, apps, daily
// activity, stepped charts, and an enforcer, so the snapshot covers every
// section of the wire format.
func buildSnapshotFixture(t *testing.T) *Store {
	t.Helper()
	day0 := dates.StudyStart
	s := New(day0)
	s.SetChartSize(5)
	s.SetEnforcer(NewEnforcer(randx.Derive(7, "enforce"), 0.8))
	s.AddDeveloper(Developer{ID: "d1", Name: "One", Country: "US", Website: "https://one.example", Email: "a@one.example"})
	s.AddDeveloper(Developer{ID: "d2", Name: "Two", Public: true})
	apps := []Listing{
		{Package: "com.a", Title: "A", Genre: "Puzzle", Developer: "d1", Released: day0.AddDays(-100)},
		{Package: "com.b", Title: "B", Genre: "Tools", Developer: "d2", Released: day0.AddDays(-10)},
		{Package: "com.idle", Title: "I", Genre: "Card", Developer: "d1", Released: day0.AddDays(-50)},
	}
	for _, l := range apps {
		if err := s.Publish(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SeedInstalls("com.a", 12345); err != nil {
		t.Fatal(err)
	}
	r := randx.Derive(3, "snapshot-fixture")
	for d := day0; d < day0.AddDays(9); d++ {
		if err := s.RecordInstallBatch("com.a", d, int64(5+r.IntN(50)), SourceOrganic, 0.05); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordInstallBatch("com.b", d, int64(30+r.IntN(80)), SourceReferral, 0.9); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordSessionBatch("com.a", d, int64(1+r.IntN(20)), 120); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordPurchase("com.b", Purchase{Day: d, USD: r.LogNormal(1, 0.5)}); err != nil {
			t.Fatal(err)
		}
		s.StepDay(d)
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := buildSnapshotFixture(t)
	snap := s.EncodeSnapshot()
	restored, err := DecodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical encoding: re-encoding the decoded store reproduces the
	// identical bytes, which is how the replay equivalence tests compare
	// whole stores.
	if !bytes.Equal(restored.EncodeSnapshot(), snap) {
		t.Fatal("snapshot encode→decode→encode is not byte-identical")
	}
	if restored.Today() != s.Today() {
		t.Errorf("today = %v, want %v", restored.Today(), s.Today())
	}
	if got, want := restored.Enforcer().Detections(), s.Enforcer().Detections(); got != want {
		t.Errorf("enforcer detections = %d, want %d", got, want)
	}
}

// TestSnapshotRestoredStoreBehavesIdentically drives a restored store and
// the original through identical further activity and verifies they stay
// byte-identical — the property resume relies on.
func TestSnapshotRestoredStoreBehavesIdentically(t *testing.T) {
	s := buildSnapshotFixture(t)
	restored, err := DecodeSnapshot(s.EncodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	day := s.Today().AddDays(1)
	for _, st := range []*Store{s, restored} {
		r := randx.Derive(11, "post-restore")
		for d := day; d < day.AddDays(5); d++ {
			if err := st.RecordInstallBatch("com.b", d, int64(40+r.IntN(30)), SourceReferral, 0.9); err != nil {
				t.Fatal(err)
			}
			if err := st.RecordPurchase("com.a", Purchase{Day: d, USD: r.LogNormal(0, 1)}); err != nil {
				t.Fatal(err)
			}
			st.StepDay(d)
		}
	}
	if !bytes.Equal(s.EncodeSnapshot(), restored.EncodeSnapshot()) {
		t.Fatal("restored store diverged from original under identical activity")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	s := buildSnapshotFixture(t)
	snap := s.EncodeSnapshot()
	if _, err := DecodeSnapshot(snap[:len(snap)/2]); err == nil {
		t.Error("truncated snapshot must not decode")
	}
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("empty snapshot must not decode")
	}
	bad := append([]byte(nil), snap...)
	bad[0] = 99 // unsupported version
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("unknown snapshot version must not decode")
	}
}

func TestEnforcerStateRoundTrip(t *testing.T) {
	e := NewEnforcer(randx.Derive(5, "enf"), 0.7)
	e.detections.Store(9)
	got, err := DecodeEnforcer(e.EncodeState())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sensitivity != e.Sensitivity || got.seed != e.seed || got.Detections() != 9 {
		t.Errorf("enforcer state did not round-trip: %+v vs %+v", got, e)
	}
	if !bytes.Equal(got.EncodeState(), e.EncodeState()) {
		t.Error("enforcer encode→decode→encode is not byte-identical")
	}
}
