package playstore

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// refWindow is the reference trailing-window aggregation: the seed
// engine's semantics (sum every field over existing days in ascending day
// order), written against the row view so it is independent of the
// rolling-window fast path it checks.
func refWindow(a *app, end dates.Date, days int) windowMetrics {
	var w windowMetrics
	for d := end.AddDays(-(days - 1)); d <= end; d++ {
		m, ok := a.metricsAt(d)
		if !ok {
			continue
		}
		w.installs += m.organic + m.referral
		w.referral += m.referral
		w.fraudSum += m.fraudSum
		w.sessions += m.sessions
		w.sessionSec += m.sessionSec
		w.revenue += m.revenue
		w.dau += m.activeUser
	}
	return w
}

func appOf(t *testing.T, s *Store, pkg string) *app {
	t.Helper()
	sh := s.shardFor(pkg)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a := sh.apps[pkg]
	if a == nil {
		t.Fatalf("app %s not found", pkg)
	}
	return a
}

// TestDenseWindowMatchesReference drives the store through an adversarial
// write pattern — day gaps, out-of-order writes, writes before the first
// active day — and checks after every step that the rolling-window fast
// path agrees bit-for-bit with the reference summation for the chart
// window, the trend window, and the clawback window.
func TestDenseWindowMatchesReference(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	const pkg = "dense.app"
	if err := s.Publish(Listing{Package: pkg, Title: "D", Genre: "Puzzle", Developer: "d"}); err != nil {
		t.Fatal(err)
	}
	r := randx.New(7)
	d0 := dates.StudyStart
	// Offsets deliberately include backward jumps and a pre-base write.
	offsets := []int{5, 5, 6, 9, 2, 30, 29, 31, -3, 31, 60, 58, 61, 61, 0, 90}
	for step, off := range offsets {
		day := d0.AddDays(off)
		switch step % 4 {
		case 0:
			if err := s.RecordInstall(pkg, Install{Day: day, Source: SourceReferral, FraudScore: r.Float64()}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := s.RecordInstallBatch(pkg, day, int64(1+r.IntN(50)), SourceOrganic, r.Float64()); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := s.RecordSessionBatch(pkg, day, int64(1+r.IntN(20)), int64(30+r.IntN(300))); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := s.RecordPurchase(pkg, Purchase{Day: day, USD: r.Float64() * 9.99}); err != nil {
				t.Fatal(err)
			}
		}
		a := appOf(t, s, pkg)
		for _, q := range []struct {
			end  dates.Date
			days int
		}{
			{day, chartWindowDays},                           // hot StepDay/enforcer query
			{day.AddDays(-chartWindowDays), chartWindowDays}, // trend window
			{day.AddDays(3), chartWindowDays},                // query beyond newest write
			{day, 30},                                        // enforcer clawback window
		} {
			got := a.window(q.end, q.days)
			want := refWindow(a, q.end, q.days)
			if got != want {
				t.Fatalf("step %d (day %s): window(%s, %d) = %+v, want %+v",
					step, day, q.end, q.days, got, want)
			}
			if math.Float64bits(got.fraudSum) != math.Float64bits(want.fraudSum) ||
				math.Float64bits(got.revenue) != math.Float64bits(want.revenue) {
				t.Fatalf("step %d: float bits differ: %+v vs %+v", step, got, want)
			}
		}
	}
}

// TestDenseStorageGrowth checks the grow-on-write geometry: slots are
// anchored at the first active day, gaps are zero-filled, and a write
// before the anchor re-bases without losing data.
func TestDenseStorageGrowth(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	if err := s.Publish(Listing{Package: "g.app", Title: "G", Genre: "Tools", Developer: "d"}); err != nil {
		t.Fatal(err)
	}
	d0 := dates.StudyStart
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.RecordInstall("g.app", Install{Day: d0.AddDays(10), Source: SourceOrganic}))
	must(s.RecordInstall("g.app", Install{Day: d0.AddDays(14), Source: SourceReferral}))
	must(s.RecordInstall("g.app", Install{Day: d0.AddDays(6), Source: SourceOrganic})) // before base

	a := appOf(t, s, "g.app")
	if a.base != d0.AddDays(6) {
		t.Errorf("base = %s, want %s", a.base, d0.AddDays(6))
	}
	if a.n != 9 { // days 6..14 inclusive
		t.Errorf("dense length = %d, want 9", a.n)
	}
	for off, want := range map[int]int64{6: 1, 10: 1, 14: 1, 7: 0, 13: 0} {
		m, ok := a.metricsAt(d0.AddDays(off))
		if !ok {
			t.Fatalf("day +%d missing from dense range", off)
		}
		if m.organic+m.referral != want {
			t.Errorf("day +%d installs = %d, want %d", off, m.organic+m.referral, want)
		}
	}
	if _, ok := a.metricsAt(d0.AddDays(5)); ok {
		t.Error("metricsAt must miss below the dense range")
	}
	if _, ok := a.metricsAt(d0.AddDays(15)); ok {
		t.Error("metricsAt must miss above the dense range")
	}
	if n, _ := s.ExactInstalls("g.app"); n != 3 {
		t.Errorf("installs = %d, want 3", n)
	}
}

// TestTopKMatchesFullSort fuzzes the bounded selection against the seed
// engine's sort-then-truncate ranking, including heavy score ties (the
// package-name tiebreak) and k larger than the candidate count.
func TestTopKMatchesFullSort(t *testing.T) {
	r := randx.New(42)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(400)
		k := 1 + r.IntN(250)
		apps := make([]scoredApp, n)
		for i := range apps {
			// Few distinct scores => many ties exercising the tiebreak.
			apps[i] = scoredApp{
				pkg:   fmt.Sprintf("app.%03d", i),
				score: float64(1 + r.IntN(8)),
			}
		}

		ref := append([]scoredApp(nil), apps...)
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].score != ref[j].score {
				return ref[i].score > ref[j].score
			}
			return ref[i].pkg < ref[j].pkg
		})
		if len(ref) > k {
			ref = ref[:k]
		}

		tk := newTopK(k)
		for _, e := range apps {
			tk.push(e)
		}
		got := tk.ranked()
		if len(got) != len(ref) {
			t.Fatalf("trial %d: topK kept %d, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i].Package != ref[i].pkg || got[i].Score != ref[i].score || got[i].Rank != i+1 {
				t.Fatalf("trial %d: rank %d = %+v, want {%s %g}",
					trial, i+1, got[i], ref[i].pkg, ref[i].score)
			}
		}
	}
}

// TestChartRanksIndex checks the O(1) rank index agrees with the chart
// entries and with ChartRank, and is absent for unstepped days.
func TestChartRanksIndex(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	for i := 0; i < 30; i++ {
		pkg := fmt.Sprintf("rank.app.%02d", i)
		if err := s.Publish(Listing{Package: pkg, Title: "R", Genre: "Puzzle", Developer: "d"}); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordInstallBatch(pkg, dates.StudyStart, int64(1+i), SourceOrganic, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	s.SetChartSize(10)
	s.StepDay(dates.StudyStart)

	ranks := s.ChartRanks(ChartTopFree, dates.StudyStart)
	chart := s.Chart(ChartTopFree)
	if len(chart) != 10 || len(ranks) != 10 {
		t.Fatalf("chart %d entries, index %d entries, want 10/10", len(chart), len(ranks))
	}
	for _, e := range chart {
		if ranks[e.Package] != e.Rank {
			t.Errorf("index rank for %s = %d, want %d", e.Package, ranks[e.Package], e.Rank)
		}
		if got := s.ChartRank(ChartTopFree, dates.StudyStart, e.Package); got != e.Rank {
			t.Errorf("ChartRank(%s) = %d, want %d", e.Package, got, e.Rank)
		}
	}
	if ranks["rank.app.00"] != 0 {
		t.Error("app below the cut must be absent from the index")
	}
	if s.ChartRanks(ChartTopFree, dates.StudyStart.AddDays(1)) != nil {
		t.Error("unstepped day must have no rank index")
	}
}

// TestConsoleEdgeCases covers the preallocated Console result: an empty
// (inverted) range, a range with no recorded activity, and a range
// overlapping activity on both sides.
func TestConsoleEdgeCases(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	if err := s.Publish(Listing{Package: "c.app", Title: "C", Genre: "Tools", Developer: "d"}); err != nil {
		t.Fatal(err)
	}
	d0 := dates.StudyStart

	// Inverted range: empty result, no error.
	out, err := s.Console("c.app", d0.AddDays(5), d0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("inverted range returned %d days, want 0", len(out))
	}

	// App with no activity at all: every day present and zero.
	out, err = s.Console("c.app", d0, d0.AddDays(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("len = %d, want 4", len(out))
	}
	for i, cd := range out {
		if cd.Day != d0.AddDays(i) || cd.Organic != 0 || cd.Referral != 0 || cd.Removed != 0 {
			t.Errorf("day %d = %+v, want zero ConsoleDay for %s", i, cd, d0.AddDays(i))
		}
	}

	// Activity on one day; querying a window extending past both ends of
	// the dense range must yield zeros outside it.
	if err := s.RecordInstall("c.app", Install{Day: d0.AddDays(2), Source: SourceReferral}); err != nil {
		t.Fatal(err)
	}
	out, err = s.Console("c.app", d0.AddDays(1), d0.AddDays(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0].Referral != 0 || out[1].Referral != 1 || out[2].Referral != 0 {
		t.Errorf("console = %+v, want referral only on the middle day", out)
	}
}
