package playstore

import (
	"fmt"
	"testing"

	"repro/internal/dates"
)

// benchChartStore builds a store with napps apps carrying days of realistic
// mixed activity (installs, sessions, purchases), ending the day before
// benchDay, so StepDay(benchDay) scores a fully warm trailing window.
func benchChartStore(b *testing.B, napps, days int) (*Store, []string, dates.Date) {
	b.Helper()
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d", Name: "Bench"})
	genres := []string{"Puzzle", "Arcade", "Tools", "Casual", "Finance"}
	pkgs := make([]string, napps)
	for i := range pkgs {
		pkgs[i] = fmt.Sprintf("bench.chart.n%05d", i)
		if err := s.Publish(Listing{
			Package: pkgs[i], Title: "B", Genre: genres[i%len(genres)],
			Developer: "d", Released: dates.StudyStart,
		}); err != nil {
			b.Fatal(err)
		}
	}
	for d := 0; d < days; d++ {
		day := dates.StudyStart.AddDays(d)
		for i, pkg := range pkgs {
			// Deterministic, app-varied volumes; every app is active so
			// the chart pass scores the whole catalog.
			n := int64(1 + (i+d)%17)
			if err := s.RecordInstallBatch(pkg, day, n, SourceOrganic, 0.05); err != nil {
				b.Fatal(err)
			}
			if err := s.RecordSessionBatch(pkg, day, n*2, 120); err != nil {
				b.Fatal(err)
			}
			if i%3 == 0 {
				if err := s.RecordPurchase(pkg, Purchase{Day: day, USD: float64(1+i%5) * 0.99}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return s, pkgs, dates.StudyStart.AddDays(days)
}

// BenchmarkStepDayScale isolates the daily chart/window pass over a
// catalog-sized store: per-app trailing-window aggregation, scoring, and
// the top-K merge, with no enforcer and no engine on the clock
// (DESIGN.md E4).
func BenchmarkStepDayScale(b *testing.B) {
	s, _, benchDay := benchChartStore(b, 4096, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepDay(benchDay)
	}
}

// BenchmarkAppWindow isolates the trailing-window aggregation for one app
// with a long activity history (DESIGN.md E4). "warm" repeats the same end
// day (the StepDay access pattern after the first app of a day); "scan"
// queries a window ending one day earlier, which always takes the
// general path; "clawback" is the enforcer's 30-day window.
func BenchmarkAppWindow(b *testing.B) {
	s, pkgs, benchDay := benchChartStore(b, 1, 60)
	sh := s.shardFor(pkgs[0])
	sh.mu.Lock()
	a := sh.apps[pkgs[0]]
	sh.mu.Unlock()
	end := benchDay.AddDays(-1)
	var sink windowMetrics
	b.Run("warm7", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = a.window(end, 7)
		}
	})
	b.Run("scan7", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = a.window(end.AddDays(-1), 7)
		}
	})
	b.Run("clawback30", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = a.window(end, 30)
		}
	})
	_ = sink
}

// BenchmarkChartRank measures the per-app chart-presence lookup the
// organic phase performs once per app per simulated day (DESIGN.md E4).
func BenchmarkChartRank(b *testing.B) {
	s, pkgs, benchDay := benchChartStore(b, 512, 8)
	s.StepDay(benchDay)
	onChart := s.Chart(ChartTopFree)[0].Package
	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s.ChartRank(ChartTopFree, benchDay, onChart) == 0 {
				b.Fatal("expected on-chart app")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s.ChartRank(ChartTopFree, benchDay, pkgs[len(pkgs)-1]+".absent") != 0 {
				b.Fatal("expected absent app")
			}
		}
	})
}
