package playstore

import (
	"math"

	"repro/internal/dates"
)

// Chart names exposed by the store. The paper's case studies involve the
// top-games chart (TREBEL) and the top-grossing chart (World on Fire).
const (
	ChartTopFree     = "top-free"
	ChartTopGames    = "top-games"
	ChartTopGrossing = "top-grossing"
)

// ChartNames lists all charts the store computes, in a stable order.
var ChartNames = []string{ChartTopFree, ChartTopGames, ChartTopGrossing}

// DefaultChartSize is how many entries each chart carries by default;
// Play's public charts show a few hundred apps.
const DefaultChartSize = 200

// ChartSize is retained as the historical name for the default size.
const ChartSize = DefaultChartSize

// chartWindowDays is the trailing engagement window feeding chart scores.
const chartWindowDays = 7

// gameGenres identifies listings eligible for the top-games chart.
var gameGenres = map[string]bool{
	"Action": true, "Adventure": true, "Arcade": true, "Board": true,
	"Card": true, "Casino": true, "Casual": true, "Educational": true,
	"Music": true, "Puzzle": true, "Racing": true, "Role Playing": true,
	"Simulation": true, "Sports": true, "Strategy": true, "Trivia": true,
	"Word": true,
}

// ChartScoring selects how chart scores are computed. EngagementScoring is
// the default and mirrors the paper's observation that "Google Play Store
// places apps in top charts based on user engagement metrics";
// InstallsOnlyScoring is the ablation variant that ranks purely on install
// velocity.
type ChartScoring int

const (
	// EngagementScoring blends install velocity, active users, and
	// session length.
	EngagementScoring ChartScoring = iota
	// InstallsOnlyScoring ranks purely by trailing install volume.
	InstallsOnlyScoring
)

// SetChartScoring selects the store-wide chart scoring mode; set it before
// stepping days.
func (s *Store) SetChartScoring(m ChartScoring) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scoring = m
}

// SetChartSize overrides how many entries each chart carries; set it
// before stepping days. Sizes below 1 are ignored.
func (s *Store) SetChartSize(n int) {
	if n < 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chartSize = n
}

// ChartSizeNow returns the configured chart size.
func (s *Store) ChartSizeNow() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.effectiveChartSizeLocked()
}

func (s *Store) effectiveChartSizeLocked() int {
	if s.chartSize > 0 {
		return s.chartSize
	}
	return DefaultChartSize
}

// freeScore computes the engagement score used by top-free and top-games.
// prev is the preceding window, feeding a trend term: the store's public
// charts list "trending" apps, so recent engagement growth counts beyond
// absolute volume. That trend term is what lets an activity campaign lift
// a mid-size app over larger static apps — the mechanism behind the
// paper's Table 6 finding that activity offers (vetted IIPs) push apps
// into top charts while pure install bursts do not.
func freeScore(w, prev windowMetrics, mode ChartScoring) float64 {
	installs := math.Log1p(float64(w.installs))
	if mode == InstallsOnlyScoring {
		return installs
	}
	dau := math.Log1p(float64(w.dau))
	avgSess := 0.0
	if w.sessions > 0 {
		avgSess = float64(w.sessionSec) / float64(w.sessions)
	}
	engNow := float64(w.dau) + 0.02*float64(w.sessionSec)
	engPrev := float64(prev.dau) + 0.02*float64(prev.sessionSec)
	trend := 0.0
	if engNow > engPrev {
		trend = math.Log1p(engNow/(engPrev+1) - 1)
	}
	return 1.0*installs + 2.0*dau + 0.01*avgSess + 2.5*trend
}

// grossScore computes the revenue score for the top-grossing chart.
func grossScore(w windowMetrics) float64 {
	return math.Log1p(w.revenue)
}

// Chart returns the latest computed entries for a chart name (nil if the
// chart has never been computed or is unknown).
func (s *Store) Chart(name string) []ChartEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]ChartEntry(nil), s.charts[name]...)
}

// ChartOn returns the chart as computed on a specific (previously stepped)
// day.
func (s *Store) ChartOn(name string, day dates.Date) []ChartEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.history[name]
	if h == nil {
		return nil
	}
	return append([]ChartEntry(nil), h[day]...)
}

// ChartRank returns the 1-based rank of pkg in the named chart on day, or
// 0 when absent. The lookup is O(1): StepDay stores a package->rank index
// alongside each day's entries.
func (s *Store) ChartRank(name string, day dates.Date, pkg string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ranks[name][day][pkg]
}

// ChartRanks returns the package->rank index for a chart on a previously
// stepped day (nil when the chart was not computed that day). The copy is
// the caller's own — one O(chart-size) allocation per call. Hot callers —
// the engine's organic phase resolves chart presence for every app every
// simulated day — fetch it once per day and read it without further store
// locking.
func (s *Store) ChartRanks(name string, day dates.Date) map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := s.ranks[name][day]
	if idx == nil {
		return nil
	}
	cp := make(map[string]int, len(idx))
	for pkg, rank := range idx {
		cp[pkg] = rank
	}
	return cp
}

// ChartPercentile converts a rank to the percentile-rank representation of
// Figure 5 (100 = top of the chart, 0 = absent/bottom).
func ChartPercentile(rank, size int) float64 {
	if rank <= 0 || size <= 0 {
		return 0
	}
	return 100 * (1 - float64(rank-1)/float64(size))
}
