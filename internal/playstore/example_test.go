package playstore_test

import (
	"fmt"

	"repro/internal/playstore"
)

func ExampleInstallBin() {
	// Google displays install counts as lower-bound bins: the honey
	// app's 1,679 delivered installs show as "1,000+".
	fmt.Println(playstore.BinLabel(playstore.InstallBin(1679)))
	fmt.Println(playstore.BinLabel(playstore.InstallBin(437)))
	// Output:
	// 1,000+
	// 100+
}

func ExampleChartPercentile() {
	// Figure 5 plots percentile ranks: rank 1 of 200 is the 100th
	// percentile, absence is 0.
	fmt.Println(playstore.ChartPercentile(1, 200))
	fmt.Println(playstore.ChartPercentile(0, 200))
	// Output:
	// 100
	// 0
}
