package playstore

import (
	"bytes"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// TestHorizonSizingEquivalence pins SetHorizon as a pure allocation
// hint: the same write stream against a horizon-sized store and a
// doubling-ladder store must produce byte-identical snapshots and
// identical window queries — including writes past the horizon, which
// fall back to doubling growth.
func TestHorizonSizingEquivalence(t *testing.T) {
	d0 := dates.StudyStart
	build := func(horizon bool) *Store {
		s := New(d0)
		s.AddDeveloper(Developer{ID: "d"})
		if horizon {
			s.SetHorizon(d0.AddDays(40))
		}
		for i := 0; i < 20; i++ {
			if err := s.Publish(Listing{
				Package: pkgName(i), Title: "t", Genre: "Tools", Developer: "d",
			}); err != nil {
				t.Fatal(err)
			}
		}
		r := randx.New(7)
		// Drive well past the 40-day horizon so the fallback growth path
		// runs too.
		for day := 0; day < 60; day++ {
			d := d0.AddDays(day)
			for i := 0; i < 20; i++ {
				if r.Bool(0.7) {
					s.RecordInstall(pkgName(i), Install{Day: d, Source: SourceOrganic})
				}
				if r.Bool(0.3) {
					s.RecordSession(pkgName(i), Session{Day: d, Seconds: 60})
				}
			}
			s.StepDay(d)
		}
		return s
	}

	plain, sized := build(false), build(true)
	if !bytes.Equal(plain.EncodeSnapshot(), sized.EncodeSnapshot()) {
		t.Error("SetHorizon changed the snapshot byte stream")
	}
	for i := 0; i < 20; i++ {
		a, b := appOf(t, plain, pkgName(i)), appOf(t, sized, pkgName(i))
		for _, days := range []int{7, 30, 60} {
			if got, want := b.window(d0.AddDays(59), days), a.window(d0.AddDays(59), days); got != want {
				t.Errorf("app %d window(%d) = %+v, want %+v", i, days, got, want)
			}
		}
	}
}

func pkgName(i int) string {
	return "com.horizon.app" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}
