package playstore

import "sort"

// scoredApp is one positive chart score produced by the shard scan.
type scoredApp struct {
	pkg   string
	score float64
}

// chartWorse reports whether x ranks strictly below y in chart order
// (descending score, ascending package tiebreak). Packages are unique
// within a day's scores, so this is a strict total order — which is what
// makes the bounded selection below independent of push order.
func chartWorse(x, y scoredApp) bool {
	if x.score != y.score {
		return x.score < y.score
	}
	return x.pkg > y.pkg
}

// topK selects the k best scored apps from a stream without sorting the
// whole catalog: a bounded min-heap (in chart order) keeps the worst kept
// entry at the root, so a full day's chart merge costs O(n log k) with k
// the chart size, instead of the O(n log n) sort-then-truncate it
// replaces. The selected set — and, after ranked(), its order — is
// identical to sorting all candidates and truncating to k.
type topK struct {
	k    int
	heap []scoredApp
}

func newTopK(k int) *topK {
	return &topK{k: k, heap: make([]scoredApp, 0, k)}
}

// push offers one candidate to the selection.
func (t *topK) push(e scoredApp) {
	if t.k <= 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, e)
		t.up(len(t.heap) - 1)
		return
	}
	if chartWorse(e, t.heap[0]) {
		return // worse than the worst kept entry
	}
	t.heap[0] = e
	t.down(0)
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !chartWorse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *topK) down(i int) {
	n := len(t.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && chartWorse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && chartWorse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// ranked consumes the selection and returns it as a rank-ordered chart.
func (t *topK) ranked() []ChartEntry {
	sort.Slice(t.heap, func(i, j int) bool { return chartWorse(t.heap[j], t.heap[i]) })
	out := make([]ChartEntry, len(t.heap))
	for i, e := range t.heap {
		out[i] = ChartEntry{Rank: i + 1, Package: e.pkg, Score: e.score}
	}
	t.heap = t.heap[:0]
	return out
}
