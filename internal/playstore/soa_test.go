package playstore

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

// aosApp is the seed engine's array-of-structs day storage, kept here as
// the reference implementation the SoA column arena is pinned against. It
// applies the exact record arithmetic of the store's paths (same
// expression order per event, so per-day float values are bit-identical
// by construction) over a plain day-keyed map, and aggregates windows by
// summing every field in ascending day order — the seed semantics.
type aosApp struct {
	installs int64
	days     map[dates.Date]*dayMetrics
}

func newAosApp() *aosApp {
	return &aosApp{days: map[dates.Date]*dayMetrics{}}
}

func (r *aosApp) day(d dates.Date) *dayMetrics {
	m := r.days[d]
	if m == nil {
		m = &dayMetrics{}
		r.days[d] = m
	}
	return m
}

func (r *aosApp) recordInstall(in Install) {
	m := r.day(in.Day)
	if in.Source == SourceOrganic {
		m.organic++
	} else {
		m.referral++
	}
	m.fraudSum += clamp01(in.FraudScore)
	r.installs++
}

func (r *aosApp) recordInstallBatch(day dates.Date, n int64, source InstallSource, meanFraud float64) {
	m := r.day(day)
	if source == SourceOrganic {
		m.organic += n
	} else {
		m.referral += n
	}
	m.fraudSum += clamp01(meanFraud) * float64(n)
	r.installs += n
}

func (r *aosApp) recordSessionBatch(day dates.Date, n, secondsPer int64) {
	m := r.day(day)
	m.sessions += n
	m.sessionSec += n * secondsPer
	m.activeUser += n
}

func (r *aosApp) recordPurchase(p Purchase) {
	r.day(p.Day).revenue += p.USD
}

func (r *aosApp) window(end dates.Date, days int) windowMetrics {
	var w windowMetrics
	for d := end.AddDays(-(days - 1)); d <= end; d++ {
		m := r.days[d]
		if m == nil {
			continue
		}
		w.installs += m.organic + m.referral
		w.referral += m.referral
		w.fraudSum += m.fraudSum
		w.sessions += m.sessions
		w.sessionSec += m.sessionSec
		w.revenue += m.revenue
		w.dau += m.activeUser
	}
	return w
}

// sameBits compares two windowMetrics with float equality tightened to
// bit equality (NaN-proof, sign-of-zero-proof).
func sameBits(a, b windowMetrics) bool {
	return a.installs == b.installs &&
		a.referral == b.referral &&
		a.sessions == b.sessions &&
		a.sessionSec == b.sessionSec &&
		a.dau == b.dau &&
		math.Float64bits(a.fraudSum) == math.Float64bits(b.fraudSum) &&
		math.Float64bits(a.revenue) == math.Float64bits(b.revenue)
}

// TestSoAMatchesAoSReference fuzzes the column-arena storage against the
// AoS reference: random interleavings of every record kind over several
// apps sharing one shard arena, with day offsets that force grow-on-write
// appends, window-roll gaps both short and beyond a full window, and
// pre-base backfill relocations. After every operation the touched app's
// chart window, trend window, clawback window, and raw rows must match
// the reference bit-for-bit; at the end, every day of every app is
// row-compared and a snapshot round-trip must re-encode byte-identically.
func TestSoAMatchesAoSReference(t *testing.T) {
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		r := randx.New(uint64(1000 + trial))
		s := New(dates.StudyStart)
		s.AddDeveloper(Developer{ID: "d", Name: "D"})
		pkgs := []string{"soa.a", "soa.b", "soa.c"}
		refs := map[string]*aosApp{}
		for _, pkg := range pkgs {
			if err := s.Publish(Listing{Package: pkg, Title: pkg, Genre: "Puzzle", Developer: "d"}); err != nil {
				t.Fatal(err)
			}
			refs[pkg] = newAosApp()
		}
		d0 := dates.StudyStart
		day := d0
		ops := 60 + r.IntN(120)
		for step := 0; step < ops; step++ {
			// Mostly monotonic day advances with occasional long jumps
			// (full-window rebuild) and backward writes (backfill,
			// out-of-window mutation).
			switch r.IntN(8) {
			case 0:
				day = day.AddDays(chartWindowDays + r.IntN(20)) // gap >= window
			case 1:
				day = day.AddDays(-r.IntN(12)) // backward, possibly pre-base
				if day < d0.AddDays(-15) {
					day = d0.AddDays(-15)
				}
			default:
				day = day.AddDays(r.IntN(3))
			}
			pkg := pkgs[r.IntN(len(pkgs))]
			ref := refs[pkg]
			switch r.IntN(4) {
			case 0:
				in := Install{Day: day, Source: SourceReferral, FraudScore: r.Float64()}
				if r.IntN(2) == 0 {
					in.Source = SourceOrganic
				}
				if err := s.RecordInstall(pkg, in); err != nil {
					t.Fatal(err)
				}
				ref.recordInstall(in)
			case 1:
				n, fraud := int64(1+r.IntN(40)), r.Float64()
				if err := s.RecordInstallBatch(pkg, day, n, SourceOrganic, fraud); err != nil {
					t.Fatal(err)
				}
				ref.recordInstallBatch(day, n, SourceOrganic, fraud)
			case 2:
				n, sec := int64(1+r.IntN(15)), int64(30+r.IntN(200))
				if err := s.RecordSessionBatch(pkg, day, n, sec); err != nil {
					t.Fatal(err)
				}
				ref.recordSessionBatch(day, n, sec)
			case 3:
				p := Purchase{Day: day, USD: r.Float64() * 19.99}
				if err := s.RecordPurchase(pkg, p); err != nil {
					t.Fatal(err)
				}
				ref.recordPurchase(p)
			}
			a := appOf(t, s, pkg)
			for _, q := range []struct {
				end  dates.Date
				days int
			}{
				{day, chartWindowDays},
				{day.AddDays(-chartWindowDays), chartWindowDays},
				{day.AddDays(1 + r.IntN(5)), chartWindowDays},
				{day, 30},
			} {
				got := a.window(q.end, q.days)
				want := ref.window(q.end, q.days)
				if !sameBits(got, want) {
					t.Fatalf("trial %d step %d: window(%s, %d) = %+v, want %+v",
						trial, step, q.end, q.days, got, want)
				}
			}
			if a.installs != ref.installs {
				t.Fatalf("trial %d step %d: installs = %d, want %d", trial, step, a.installs, ref.installs)
			}
		}
		// Full row sweep: every day either side of the dense range too.
		for _, pkg := range pkgs {
			a, ref := appOf(t, s, pkg), refs[pkg]
			for d := d0.AddDays(-20); d <= day.AddDays(5); d++ {
				got, ok := a.metricsAt(d)
				want := dayMetrics{}
				if m := ref.days[d]; m != nil {
					want = *m
				}
				if !ok && want != (dayMetrics{}) {
					t.Fatalf("trial %d: %s day %s missing, want %+v", trial, pkg, d, want)
				}
				if ok && got != want {
					t.Fatalf("trial %d: %s day %s = %+v, want %+v", trial, pkg, d, got, want)
				}
			}
		}
		// The snapshot codec transposes rows out of the columns; a decode
		// must rebuild a store that re-encodes to the identical bytes.
		snap := s.EncodeSnapshot()
		s2, err := DecodeSnapshot(snap)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !bytes.Equal(snap, s2.EncodeSnapshot()) {
			t.Fatalf("trial %d: snapshot round-trip not byte-identical", trial)
		}
	}
}
