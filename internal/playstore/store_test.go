package playstore

import (
	"errors"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "dev1", Name: "Acme Apps", Country: "USA"})
	if err := s.Publish(Listing{
		Package: "com.acme.memo", Title: "Voice Memos", Genre: "Tools",
		Developer: "dev1", Released: dates.StudyStart.AddDays(-30),
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublishValidation(t *testing.T) {
	s := New(dates.StudyStart)
	err := s.Publish(Listing{Package: "a.b.c", Developer: "nobody"})
	if !errors.Is(err, ErrUnknownDeveloper) {
		t.Errorf("want ErrUnknownDeveloper, got %v", err)
	}
	s.AddDeveloper(Developer{ID: "d"})
	if err := s.Publish(Listing{Package: "a.b.c", Developer: "d"}); err != nil {
		t.Fatal(err)
	}
	err = s.Publish(Listing{Package: "a.b.c", Developer: "d"})
	if !errors.Is(err, ErrDuplicateApp) {
		t.Errorf("want ErrDuplicateApp, got %v", err)
	}
}

func TestUnknownAppErrors(t *testing.T) {
	s := New(dates.StudyStart)
	if err := s.RecordInstall("nope", Install{}); !errors.Is(err, ErrUnknownApp) {
		t.Error("RecordInstall should fail for unknown app")
	}
	if err := s.RecordSession("nope", Session{}); !errors.Is(err, ErrUnknownApp) {
		t.Error("RecordSession should fail for unknown app")
	}
	if err := s.RecordPurchase("nope", Purchase{}); !errors.Is(err, ErrUnknownApp) {
		t.Error("RecordPurchase should fail for unknown app")
	}
	if _, err := s.Profile("nope"); !errors.Is(err, ErrUnknownApp) {
		t.Error("Profile should fail for unknown app")
	}
	if _, err := s.Console("nope", 0, 1); !errors.Is(err, ErrUnknownApp) {
		t.Error("Console should fail for unknown app")
	}
	if _, err := s.ExactInstalls("nope"); !errors.Is(err, ErrUnknownApp) {
		t.Error("ExactInstalls should fail for unknown app")
	}
	if _, err := s.Developer("ghost"); !errors.Is(err, ErrUnknownDeveloper) {
		t.Error("Developer should fail for unknown developer")
	}
}

func TestInstallCountBinning(t *testing.T) {
	s := newTestStore(t)
	day := dates.StudyStart
	for i := 0; i < 1679; i++ {
		if err := s.RecordInstall("com.acme.memo", Install{Day: day, Source: SourceReferral}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.Profile("com.acme.memo")
	if err != nil {
		t.Fatal(err)
	}
	if p.InstallBin != 1000 {
		t.Errorf("InstallBin = %d, want 1000 (paper: honey app 0 -> 1,000+)", p.InstallBin)
	}
	if p.InstallLabel != "1,000+" {
		t.Errorf("InstallLabel = %q", p.InstallLabel)
	}
	exact, _ := s.ExactInstalls("com.acme.memo")
	if exact != 1679 {
		t.Errorf("exact installs = %d, want 1679", exact)
	}
}

func TestProfileMetadata(t *testing.T) {
	s := newTestStore(t)
	p, err := s.Profile("com.acme.memo")
	if err != nil {
		t.Fatal(err)
	}
	if p.DeveloperName != "Acme Apps" || p.Country != "USA" || p.Genre != "Tools" {
		t.Errorf("profile metadata wrong: %+v", p)
	}
	if p.Released != dates.StudyStart.AddDays(-30) {
		t.Errorf("release date wrong: %v", p.Released)
	}
}

func TestConsoleAnalyticsBySource(t *testing.T) {
	s := newTestStore(t)
	d0 := dates.StudyStart
	s.RecordInstall("com.acme.memo", Install{Day: d0, Source: SourceOrganic})
	s.RecordInstall("com.acme.memo", Install{Day: d0, Source: SourceReferral})
	s.RecordInstall("com.acme.memo", Install{Day: d0, Source: SourceReferral})
	s.RecordInstall("com.acme.memo", Install{Day: d0.AddDays(1), Source: SourceReferral})

	days, err := s.Console("com.acme.memo", d0, d0.AddDays(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 3 {
		t.Fatalf("len = %d, want 3", len(days))
	}
	if days[0].Organic != 1 || days[0].Referral != 2 {
		t.Errorf("day0 = %+v", days[0])
	}
	if days[1].Organic != 0 || days[1].Referral != 1 {
		t.Errorf("day1 = %+v", days[1])
	}
	if days[2].Organic != 0 && days[2].Referral != 0 {
		t.Errorf("day2 should be empty: %+v", days[2])
	}
}

func TestChartsEngagementBeatsInstallsOnly(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Publish(Listing{Package: "game.burst", Title: "Burst", Genre: "Puzzle", Developer: "d", Released: 0}))
	must(s.Publish(Listing{Package: "game.engaged", Title: "Engaged", Genre: "Puzzle", Developer: "d", Released: 0}))

	day := dates.StudyStart
	// burst: many installs, no engagement (a no-activity campaign).
	for i := 0; i < 1000; i++ {
		must(s.RecordInstall("game.burst", Install{Day: day, Source: SourceReferral}))
	}
	// engaged: fewer installs but with sessions (an activity campaign).
	for i := 0; i < 300; i++ {
		must(s.RecordInstall("game.engaged", Install{Day: day, Source: SourceReferral}))
		must(s.RecordSession("game.engaged", Session{Day: day, Seconds: 600}))
	}
	s.StepDay(day)

	chart := s.Chart(ChartTopGames)
	if len(chart) != 2 {
		t.Fatalf("chart size = %d, want 2", len(chart))
	}
	if chart[0].Package != "game.engaged" {
		t.Errorf("engagement scoring should rank engaged app first, got %s", chart[0].Package)
	}

	// Ablation: installs-only scoring flips the ranking.
	s.SetChartScoring(InstallsOnlyScoring)
	s.StepDay(day)
	chart = s.Chart(ChartTopGames)
	if chart[0].Package != "game.burst" {
		t.Errorf("installs-only scoring should rank burst app first, got %s", chart[0].Package)
	}
}

func TestTopGrossingNeedsRevenue(t *testing.T) {
	s := newTestStore(t)
	day := dates.StudyStart
	s.RecordInstall("com.acme.memo", Install{Day: day})
	s.StepDay(day)
	if got := s.Chart(ChartTopGrossing); len(got) != 0 {
		t.Errorf("no-revenue app should not appear in top-grossing: %v", got)
	}
	s.RecordPurchase("com.acme.memo", Purchase{Day: day, USD: 4.99})
	s.StepDay(day)
	got := s.Chart(ChartTopGrossing)
	if len(got) != 1 || got[0].Package != "com.acme.memo" {
		t.Errorf("purchase should place app in top-grossing: %v", got)
	}
}

func TestTopGamesFiltersGenre(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	s.Publish(Listing{Package: "tool.app", Title: "T", Genre: "Tools", Developer: "d"})
	s.RecordInstall("tool.app", Install{Day: dates.StudyStart})
	s.StepDay(dates.StudyStart)
	for _, e := range s.Chart(ChartTopGames) {
		if e.Package == "tool.app" {
			t.Error("non-game app should not appear in top-games")
		}
	}
	if len(s.Chart(ChartTopFree)) != 1 {
		t.Error("app should appear in top-free")
	}
}

func TestChartHistoryAndRank(t *testing.T) {
	s := newTestStore(t)
	d0, d1 := dates.StudyStart, dates.StudyStart.AddDays(1)
	s.RecordInstall("com.acme.memo", Install{Day: d0})
	s.StepDay(d0)
	s.StepDay(d1.AddDays(7)) // window passed; app decays out
	if rank := s.ChartRank(ChartTopFree, d0, "com.acme.memo"); rank != 1 {
		t.Errorf("historical rank = %d, want 1", rank)
	}
	if rank := s.ChartRank(ChartTopFree, d1.AddDays(7), "com.acme.memo"); rank != 0 {
		t.Errorf("rank after decay = %d, want 0 (absent)", rank)
	}
	if s.ChartRank("no-such-chart", d0, "x") != 0 {
		t.Error("unknown chart should yield rank 0")
	}
}

func TestChartUnreleasedAppExcluded(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	s.Publish(Listing{
		Package: "future.app", Title: "F", Genre: "Tools", Developer: "d",
		Released: dates.StudyStart.AddDays(10),
	})
	s.RecordInstall("future.app", Install{Day: dates.StudyStart})
	s.StepDay(dates.StudyStart)
	if len(s.Chart(ChartTopFree)) != 0 {
		t.Error("unreleased app must not chart")
	}
}

func TestChartPercentile(t *testing.T) {
	if got := ChartPercentile(1, 200); got != 100 {
		t.Errorf("rank 1 percentile = %g, want 100", got)
	}
	if got := ChartPercentile(0, 200); got != 0 {
		t.Errorf("absent percentile = %g, want 0", got)
	}
	if got := ChartPercentile(101, 200); got != 50 {
		t.Errorf("rank 101 percentile = %g, want 50", got)
	}
}

func TestChartDeterministicTiebreak(t *testing.T) {
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d"})
	s.Publish(Listing{Package: "b.app", Title: "B", Genre: "Tools", Developer: "d"})
	s.Publish(Listing{Package: "a.app", Title: "A", Genre: "Tools", Developer: "d"})
	s.RecordInstall("b.app", Install{Day: dates.StudyStart})
	s.RecordInstall("a.app", Install{Day: dates.StudyStart})
	s.StepDay(dates.StudyStart)
	chart := s.Chart(ChartTopFree)
	if len(chart) != 2 || chart[0].Package != "a.app" {
		t.Errorf("ties should break by package name: %v", chart)
	}
}

func TestEnforcerRemovesFraudulentBurst(t *testing.T) {
	s := newTestStore(t)
	// Deterministically aggressive enforcer.
	e := NewEnforcer(randx.New(1), 1.0)
	e.MinBurst = 100
	s.SetEnforcer(e)

	day := dates.StudyStart
	for i := 0; i < 1000; i++ {
		s.RecordInstall("com.acme.memo", Install{Day: day, Source: SourceReferral, FraudScore: 0.95})
	}
	before, _ := s.ExactInstalls("com.acme.memo")
	// Scan repeatedly; with sensitivity 1 and high fraud, detection is
	// near-certain within a few days.
	for d := day; d <= day.AddDays(5); d++ {
		s.StepDay(d)
	}
	after, _ := s.ExactInstalls("com.acme.memo")
	if after >= before {
		t.Errorf("enforcer removed nothing: before=%d after=%d", before, after)
	}
	if e.Detections() == 0 {
		t.Error("no detections recorded")
	}
	// Console must expose the removals.
	days, _ := s.Console("com.acme.memo", day, day.AddDays(5))
	removed := int64(0)
	for _, cd := range days {
		removed += cd.Removed
	}
	if removed != before-after {
		t.Errorf("console removed=%d, want %d", removed, before-after)
	}
}

func TestEnforcerIgnoresCleanInstalls(t *testing.T) {
	s := newTestStore(t)
	e := NewEnforcer(randx.New(1), 1.0)
	e.MinBurst = 100
	s.SetEnforcer(e)
	day := dates.StudyStart
	for i := 0; i < 1000; i++ {
		s.RecordInstall("com.acme.memo", Install{Day: day, Source: SourceOrganic, FraudScore: 0.05})
	}
	for d := day; d <= day.AddDays(5); d++ {
		s.StepDay(d)
	}
	after, _ := s.ExactInstalls("com.acme.memo")
	if after != 1000 {
		t.Errorf("clean installs were removed: %d", after)
	}
}

func TestEnforcerIgnoresSmallBursts(t *testing.T) {
	s := newTestStore(t)
	e := NewEnforcer(randx.New(1), 1.0)
	s.SetEnforcer(e)
	day := dates.StudyStart
	small := int(e.MinBurst) - 1
	for i := 0; i < small; i++ { // just below MinBurst
		s.RecordInstall("com.acme.memo", Install{Day: day, FraudScore: 1.0})
	}
	s.StepDay(day)
	after, _ := s.ExactInstalls("com.acme.memo")
	if after != int64(small) {
		t.Errorf("small burst should be invisible: %d", after)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newTestStore(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			s.RecordInstall("com.acme.memo", Install{Day: dates.StudyStart})
			s.RecordSession("com.acme.memo", Session{Day: dates.StudyStart, Seconds: 30})
		}
	}()
	for i := 0; i < 200; i++ {
		s.Profile("com.acme.memo")
		s.Chart(ChartTopFree)
		s.StepDay(dates.StudyStart)
	}
	<-done
	n, _ := s.ExactInstalls("com.acme.memo")
	if n != 500 {
		t.Errorf("installs = %d, want 500", n)
	}
}
