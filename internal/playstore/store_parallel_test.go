package playstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dates"
)

// newManyAppStore publishes n apps spread across the shards.
func newManyAppStore(t testing.TB, n int) (*Store, []string) {
	t.Helper()
	s := New(dates.StudyStart)
	s.AddDeveloper(Developer{ID: "d", Name: "Dev"})
	pkgs := make([]string, n)
	for i := range pkgs {
		pkgs[i] = fmt.Sprintf("com.app.n%04d", i)
		if err := s.Publish(Listing{Package: pkgs[i], Title: "T", Genre: "Puzzle", Developer: "d"}); err != nil {
			t.Fatal(err)
		}
	}
	return s, pkgs
}

// TestShardedParallelWrites hammers every record path from many goroutines
// and checks nothing is lost: the whole point of the sharded layout is
// that per-app writes on different apps are safe and contention-free.
func TestShardedParallelWrites(t *testing.T) {
	const apps = 128
	const writers = 16
	const perWriter = 200
	s, pkgs := newManyAppStore(t, apps)

	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				pkg := pkgs[(wr*perWriter+i)%apps]
				if err := s.RecordInstall(pkg, Install{Day: dates.StudyStart, Source: SourceReferral, FraudScore: 0.2}); err != nil {
					t.Error(err)
					return
				}
				if err := s.RecordSession(pkg, Session{Day: dates.StudyStart, Seconds: 60}); err != nil {
					t.Error(err)
					return
				}
				if err := s.RecordPurchase(pkg, Purchase{Day: dates.StudyStart, USD: 0.99}); err != nil {
					t.Error(err)
					return
				}
			}
		}(wr)
	}
	wg.Wait()

	var total int64
	for _, pkg := range pkgs {
		n, err := s.ExactInstalls(pkg)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if want := int64(writers * perWriter); total != want {
		t.Errorf("total installs = %d, want %d (lost writes under contention)", total, want)
	}

	// The day step still sees every shard's activity.
	s.StepDay(dates.StudyStart)
	if got := len(s.Chart(ChartTopFree)); got == 0 {
		t.Error("chart empty after parallel writes")
	}
}

// TestShardAssignmentStable ensures every published app is reachable and
// that packages land on more than one shard (the hash actually spreads).
func TestShardAssignmentStable(t *testing.T) {
	s, pkgs := newManyAppStore(t, 256)
	used := map[*shard]bool{}
	for _, pkg := range pkgs {
		used[s.shardFor(pkg)] = true
		if _, err := s.Profile(pkg); err != nil {
			t.Fatalf("app %s unreachable: %v", pkg, err)
		}
	}
	if len(used) < NumShards/2 {
		t.Errorf("only %d of %d shards used for 256 apps; hash is clumping", len(used), NumShards)
	}
}

// TestParallelWritesDuringStepDay exercises the cross-lock path: chart
// recomputes fan out over shard locks while writers mutate other days.
func TestParallelWritesDuringStepDay(t *testing.T) {
	s, pkgs := newManyAppStore(t, 64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			pkg := pkgs[i%len(pkgs)]
			s.RecordInstall(pkg, Install{Day: dates.StudyStart.AddDays(i % 5), Source: SourceOrganic})
			i++
		}
	}()
	// Nondecreasing days (StepDay's contract), each stepped repeatedly
	// while the writer mutates the same day range.
	for d := 0; d < 20; d++ {
		s.StepDay(dates.StudyStart.AddDays(d / 4))
	}
	close(stop)
	wg.Wait()
}
