package playstore

import (
	"testing"
	"testing/quick"
)

func TestInstallBin(t *testing.T) {
	cases := []struct {
		n    int64
		want int64
	}{
		{-5, 0}, {0, 0}, {1, 1}, {4, 1}, {5, 5}, {9, 5}, {10, 10},
		{99, 50}, {100, 100}, {499, 100}, {500, 500}, {999, 500},
		{1000, 1000}, {1001, 1000}, {4999, 1000}, {5000, 5000},
		{999_999, 500_000}, {1_000_000, 1_000_000},
		{2_000_000_000, 1_000_000_000},
	}
	for _, c := range cases {
		if got := InstallBin(c.n); got != c.want {
			t.Errorf("InstallBin(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestInstallBinPaperExample(t *testing.T) {
	// The paper's honey app went from 0 to "1,000+" public installs after
	// 1,679 delivered installs.
	if got := InstallBin(1679); got != 1000 {
		t.Errorf("InstallBin(1679) = %d, want 1000", got)
	}
	// The enforcement example: "Phonebook - Contacts manager" dropped
	// from 1,000 to 500 after filtering.
	if got := InstallBin(1679 - 800); got != 500 {
		t.Errorf("after removal: got %d, want 500", got)
	}
}

func TestNextBin(t *testing.T) {
	if got := NextBin(1000); got != 5000 {
		t.Errorf("NextBin(1000) = %d, want 5000", got)
	}
	top := binLadder[len(binLadder)-1]
	if got := NextBin(top); got != top {
		t.Errorf("NextBin(top) = %d, want %d", got, top)
	}
}

func TestBinLabel(t *testing.T) {
	cases := []struct {
		bin  int64
		want string
	}{
		{0, "0+"}, {100, "100+"}, {1000, "1,000+"},
		{500000, "500,000+"}, {1000000, "1,000,000+"},
		{1000000000, "1,000,000,000+"},
	}
	for _, c := range cases {
		if got := BinLabel(c.bin); got != c.want {
			t.Errorf("BinLabel(%d) = %q, want %q", c.bin, got, c.want)
		}
	}
}

// Properties: bins are idempotent, monotone, and never exceed the input.
func TestInstallBinProperties(t *testing.T) {
	f := func(raw uint32) bool {
		n := int64(raw)
		b := InstallBin(n)
		if b > n {
			return false
		}
		if InstallBin(b) != b { // bin values are fixed points
			return false
		}
		return InstallBin(n+1) >= b // monotone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
