package playstore

import (
	"repro/internal/dates"
	"repro/internal/randx"
)

// Enforcer models Google Play's install-filtering systems (the "Keeping
// the Play Store trusted" defenses the paper cites). It scans each app's
// trailing install window for bursts dominated by high-fraud-score devices
// and retroactively removes a fraction of those installs.
//
// The paper's measurements indicate this enforcement is weak: the honey
// app's purchased installs all survived, and only ~2% of apps advertised
// on unvetted IIPs ever showed install-count decreases. The default
// Sensitivity is calibrated to that observed behaviour; the enforcement
// ablation bench sweeps it.
type Enforcer struct {
	// Sensitivity in [0, 1] scales the per-scan detection probability.
	Sensitivity float64
	// FraudThreshold is the minimum mean fraud score of a window for it
	// to be considered suspicious.
	FraudThreshold float64
	// MinBurst is the minimum trailing-window install count that can
	// trigger a scan (small bursts are invisible to the detector).
	MinBurst int64
	// RemoveFraction is the fraction of the suspicious window's installs
	// removed upon detection.
	RemoveFraction float64

	rand *randx.Rand

	// detections counts enforcement actions, for reporting.
	detections int
}

// DefaultEnforcer returns an enforcer calibrated to the weak enforcement
// the paper observed.
func DefaultEnforcer(r *randx.Rand) *Enforcer {
	return &Enforcer{
		Sensitivity:    0.4,
		FraudThreshold: 0.55,
		MinBurst:       20,
		RemoveFraction: 0.9,
		rand:           r,
	}
}

// NewEnforcer returns an enforcer with explicit parameters (used by the
// enforcement-sensitivity ablation).
func NewEnforcer(r *randx.Rand, sensitivity float64) *Enforcer {
	e := DefaultEnforcer(r)
	e.Sensitivity = sensitivity
	return e
}

// Detections returns the number of enforcement actions taken so far.
func (e *Enforcer) Detections() int { return e.detections }

// scan inspects one app on one day and applies filtering. Called by the
// store with its lock held.
func (e *Enforcer) scan(a *app, day dates.Date) {
	if e == nil || e.Sensitivity <= 0 {
		return
	}
	w := a.window(day, chartWindowDays)
	if w.installs < e.MinBurst {
		return
	}
	meanFraud := w.fraudSum / float64(w.installs)
	if meanFraud < e.FraudThreshold {
		return
	}
	// Detection probability grows with how blatant the fraud is.
	p := e.Sensitivity * (meanFraud - e.FraudThreshold) / (1 - e.FraudThreshold)
	if !e.rand.Bool(p) {
		return
	}
	// A filtering pass claws back the referral installs accumulated over
	// the trailing month, not just the triggering burst (the paper's
	// example app dropped a full public bin, 1,000+ to 500+).
	const clawbackDays = 30
	back := a.window(day, clawbackDays)
	remove := int64(float64(back.referral) * e.RemoveFraction)
	if remove <= 0 {
		return
	}
	e.detections++
	// Attribute removals to the most recent days first, mirroring how a
	// public install count drops after a filtering pass.
	left := remove
	for d := day; d >= day.AddDays(-(clawbackDays-1)) && left > 0; d-- {
		m, ok := a.daily[d]
		if !ok {
			continue
		}
		avail := m.organic + m.referral - m.removed
		if avail <= 0 {
			continue
		}
		take := avail
		if take > left {
			take = left
		}
		m.removed += take
		left -= take
	}
	a.installs -= remove - left
	if a.installs < 0 {
		a.installs = 0
	}
}
