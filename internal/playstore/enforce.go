package playstore

import (
	"fmt"
	"sync/atomic"

	"repro/internal/binenc"
	"repro/internal/dates"
	"repro/internal/randx"
)

// Enforcer models Google Play's install-filtering systems (the "Keeping
// the Play Store trusted" defenses the paper cites). It scans each app's
// trailing install window for bursts dominated by high-fraud-score devices
// and retroactively removes a fraction of those installs.
//
// The paper's measurements indicate this enforcement is weak: the honey
// app's purchased installs all survived, and only ~2% of apps advertised
// on unvetted IIPs ever showed install-count decreases. The default
// Sensitivity is calibrated to that observed behaviour; the enforcement
// ablation bench sweeps it.
//
// Scans run concurrently across store shards, so the detection draw for an
// app is keyed by (app, day) rather than consumed from a shared stream:
// the decision for a given app on a given day is identical no matter which
// shard worker reaches it first.
type Enforcer struct {
	// Sensitivity in [0, 1] scales the per-scan detection probability.
	Sensitivity float64
	// FraudThreshold is the minimum mean fraud score of a window for it
	// to be considered suspicious.
	FraudThreshold float64
	// MinBurst is the minimum trailing-window install count that can
	// trigger a scan (small bursts are invisible to the detector).
	MinBurst int64
	// RemoveFraction is the fraction of the suspicious window's installs
	// removed upon detection.
	RemoveFraction float64

	// seed keys the per-(app, day) detection draws.
	seed uint64

	// detections counts enforcement actions, for reporting; it is bumped
	// atomically because shard scans run in parallel.
	detections atomic.Int64
}

// DefaultEnforcer returns an enforcer calibrated to the weak enforcement
// the paper observed.
func DefaultEnforcer(r *randx.Rand) *Enforcer {
	return &Enforcer{
		Sensitivity:    0.4,
		FraudThreshold: 0.55,
		MinBurst:       20,
		RemoveFraction: 0.9,
		seed:           r.Uint64(),
	}
}

// NewEnforcer returns an enforcer with explicit parameters (used by the
// enforcement-sensitivity ablation).
func NewEnforcer(r *randx.Rand, sensitivity float64) *Enforcer {
	e := DefaultEnforcer(r)
	e.Sensitivity = sensitivity
	return e
}

// Detections returns the number of enforcement actions taken so far.
func (e *Enforcer) Detections() int { return int(e.detections.Load()) }

// EncodeState serializes the enforcer's parameters, detection-draw seed,
// and action counter; DecodeEnforcer rebuilds an identically behaving
// enforcer. The run-log snapshot codec uses the pair so a resumed or
// replayed run redraws every remaining (app, day) detection decision
// bit-for-bit.
func (e *Enforcer) EncodeState() []byte {
	enc := binenc.NewEnc(64)
	enc.F64(e.Sensitivity)
	enc.F64(e.FraudThreshold)
	enc.Varint(e.MinBurst)
	enc.F64(e.RemoveFraction)
	enc.U64(e.seed)
	enc.Varint(e.detections.Load())
	return enc.Bytes()
}

// DecodeEnforcer rebuilds an enforcer from EncodeState output.
func DecodeEnforcer(state []byte) (*Enforcer, error) {
	dec := binenc.NewDec(state)
	e := &Enforcer{
		Sensitivity:    dec.F64(),
		FraudThreshold: dec.F64(),
		MinBurst:       dec.Varint(),
		RemoveFraction: dec.F64(),
		seed:           dec.U64(),
	}
	e.detections.Store(dec.Varint())
	if err := dec.Done(); err != nil {
		return nil, fmt.Errorf("playstore: decoding enforcer: %w", err)
	}
	return e, nil
}

// scan inspects one app on one day and applies filtering, reporting the
// net installs removed (-1 when no detection fired; 0 and up when it did).
// Called by the store with the app's shard lock held; different shards
// scan in parallel. w is the app's trailing chart window ending at day,
// computed once by the caller and shared with chart scoring (scan itself
// only mutates removal counters and the lifetime install counter, never
// window inputs).
func (e *Enforcer) scan(a *app, day dates.Date, w windowMetrics) int64 {
	if e == nil || e.Sensitivity <= 0 {
		return -1
	}
	if w.installs < e.MinBurst {
		return -1
	}
	meanFraud := w.fraudSum / float64(w.installs)
	if meanFraud < e.FraudThreshold {
		return -1
	}
	// Detection probability grows with how blatant the fraud is. The draw
	// is a pure function of (seed, app, day): order-free determinism.
	p := e.Sensitivity * (meanFraud - e.FraudThreshold) / (1 - e.FraudThreshold)
	if randx.Unit01(e.seed, fmt.Sprintf("enforce/%s/%d", a.pkg, day)) >= p {
		return -1
	}
	// A filtering pass claws back the referral installs accumulated over
	// the trailing month, not just the triggering burst (the paper's
	// example app dropped a full public bin, 1,000+ to 500+).
	const clawbackDays = 30
	back := a.window(day, clawbackDays)
	remove := int64(float64(back.referral) * e.RemoveFraction)
	if remove <= 0 {
		return -1
	}
	e.detections.Add(1)
	// Attribute removals to the most recent days first, mirroring how a
	// public install count drops after a filtering pass.
	ar := a.ar
	left := remove
	for d := day; d >= day.AddDays(-(clawbackDays-1)) && left > 0; d-- {
		j := a.slotAt(d)
		if j < 0 {
			continue
		}
		avail := ar.organic[j] + ar.referral[j] - ar.removed[j]
		if avail <= 0 {
			continue
		}
		take := avail
		if take > left {
			take = left
		}
		ar.removed[j] += take
		left -= take
	}
	a.installs -= remove - left
	if a.installs < 0 {
		a.installs = 0
	}
	return remove - left
}
