package playstore

import (
	"repro/internal/dates"
)

// AppHandle pins one app's shard and catalog row, resolved exactly once.
// The parallel day engine resolves a handle per organic app and per
// campaign target at construction, so its inner loops never hash a package
// name or probe the shard map again.
//
// Handles never dangle: apps are not removed from the catalog, so a handle
// stays valid for the life of its Store.
//
// Locking contract: the *Locked record methods mutate the app row and must
// run under Lock/Unlock on the same handle. Because the engine's
// determinism model guarantees each app is written by exactly one goroutine
// per phase, a caller batches all of an (app, day)'s writes under a single
// Lock/Unlock pair instead of paying one lock acquisition per event — the
// shard lock here provides cross-phase memory visibility and mutual
// exclusion against whole-shard readers (StepDay's scan, Profile), not
// per-event ordering.
type AppHandle struct {
	sh *shard
	a  *app
}

// AppHandle resolves a package name to a handle. It is the only
// string-keyed step on the handle write path; everything after it is
// pointer dereferences.
func (s *Store) AppHandle(pkg string) (AppHandle, error) {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return AppHandle{}, err
	}
	return AppHandle{sh: sh, a: a}, nil
}

// Valid reports whether the handle is resolved to an app.
func (h AppHandle) Valid() bool { return h.a != nil }

// Package returns the handle's package name.
func (h AppHandle) Package() string { return h.a.pkg }

// Lock acquires the handle's shard lock for a write batch.
func (h AppHandle) Lock() { h.sh.mu.Lock() }

// Unlock releases the handle's shard lock.
func (h AppHandle) Unlock() { h.sh.mu.Unlock() }

// RecordInstallLocked is RecordInstall minus lookup and locking; the caller
// holds Lock.
func (h AppHandle) RecordInstallLocked(in Install) { h.a.recordInstall(in) }

// RecordInstallBatchLocked is RecordInstallBatch minus lookup and locking;
// the caller holds Lock.
func (h AppHandle) RecordInstallBatchLocked(day dates.Date, n int64, source InstallSource, meanFraud float64) {
	h.a.recordInstallBatch(day, n, source, meanFraud)
}

// RecordSessionLocked is RecordSession minus lookup and locking; the caller
// holds Lock.
func (h AppHandle) RecordSessionLocked(sess Session) { h.a.recordSession(sess) }

// RecordSessionBatchLocked is RecordSessionBatch minus lookup and locking;
// the caller holds Lock.
func (h AppHandle) RecordSessionBatchLocked(day dates.Date, n, secondsPer int64) {
	h.a.recordSessionBatch(day, n, secondsPer)
}

// RecordPurchaseLocked is RecordPurchase minus lookup and locking; the
// caller holds Lock.
func (h AppHandle) RecordPurchaseLocked(p Purchase) { h.a.recordPurchase(p) }
