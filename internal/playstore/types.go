// Package playstore simulates the observable surface of the Google Play
// Store that the paper's measurements touch: an app catalog with developer
// metadata, Google-style binned public install counts, engagement-driven
// top charts recomputed daily, per-developer console analytics, and a
// policy-enforcement module that (imperfectly) filters fraudulent installs.
//
// The simulator intentionally models only what the study can observe —
// profile pages, top charts, and the developer console — plus the internal
// engagement state needed to drive chart ranking the way the paper
// describes ("Google Play Store places apps in top charts based on user
// engagement metrics").
package playstore

import (
	"repro/internal/dates"
)

// DeveloperID uniquely identifies a developer account, mirroring the
// paper's note that developers are identified by their developer ID.
type DeveloperID string

// Developer is a Play Store developer account with the public metadata the
// paper crawls (company name, website, mailing address/country, email).
type Developer struct {
	ID      DeveloperID
	Name    string
	Country string
	Website string
	Email   string
	// Public marks developers that are publicly traded companies
	// (Section 4.3.3 identifies 28 advertised apps from public
	// companies).
	Public bool
}

// InstallSource is the acquisition channel recorded by the developer
// console. The store itself cannot tell incentivized installs apart from
// other referrals; the console only distinguishes organic (store search /
// browse) from third-party referral traffic.
type InstallSource int

const (
	// SourceOrganic is an install originating from store search or
	// top-chart browsing.
	SourceOrganic InstallSource = iota
	// SourceReferral is an install arriving through a third-party
	// referrer (which is how incentivized installs appear).
	SourceReferral
)

func (s InstallSource) String() string {
	switch s {
	case SourceOrganic:
		return "organic"
	case SourceReferral:
		return "referral"
	default:
		return "unknown"
	}
}

// Install is one install event as the store records it. FraudScore in
// [0, 1] abstracts the device/network reputation signals Google's install
// filtering systems consume (device reuse, emulator fingerprints,
// datacenter ASNs); the simulator's users populate it.
type Install struct {
	Day        dates.Date
	Source     InstallSource
	FraudScore float64
}

// Session is an app-usage session contributing to engagement metrics.
type Session struct {
	Day     dates.Date
	Seconds int64
}

// Purchase is an in-app purchase contributing to revenue (and hence to the
// top-grossing chart).
type Purchase struct {
	Day dates.Date
	USD float64
}

// Profile is the public store listing as seen by a crawler: exactly what
// the paper's Play Store crawl collects.
type Profile struct {
	Package       string
	Title         string
	Genre         string
	Released      dates.Date
	InstallBin    int64  // lower bound of the public install bin
	InstallLabel  string // e.g. "1,000+"
	DeveloperID   DeveloperID
	DeveloperName string
	Country       string
	Website       string
	Email         string
}

// ChartEntry is one row of a top chart.
type ChartEntry struct {
	Rank    int // 1-based
	Package string
	Score   float64
}

// ConsoleDay is one day of developer-console analytics for an app.
type ConsoleDay struct {
	Day      dates.Date
	Organic  int64
	Referral int64
	Removed  int64 // installs retroactively filtered by enforcement
}

// colArena is a shard's struct-of-arrays backing store for every app's
// dense per-day metrics: eight parallel columns, one slot per app-day.
// Each app owns one contiguous [off, off+room) range of every column, so
// the daily StepDay pass — enforcement scan, window roll, chart scoring —
// streams over flat int64/float64 columns instead of striding an array of
// heterogeneous structs per app. At 100k+ apps that layout difference is
// what keeps the per-day scan memory-bandwidth-bound rather than
// cache-miss-bound: the float re-summation reads two packed float64
// columns and nothing else.
type colArena struct {
	organic    []int64
	referral   []int64
	removed    []int64
	fraudSum   []float64
	sessions   []int64
	sessionSec []int64
	revenue    []float64
	activeUser []int64

	// horizon, when nonzero, is the last day the run is expected to
	// write (Store.SetHorizon). An app's first range is sized to reach
	// it, so steady forward writes never relocate and the arena carries
	// no abandoned ranges — without it, every long-lived app walks the
	// full doubling ladder and more than half the arena ends up dead.
	// Purely an allocation-sizing hint: values, iteration order, and
	// the snapshot wire format are identical with or without it.
	horizon dates.Date
}

// alloc extends every column by n zeroed slots and returns the starting
// offset of the new range. Ranges are never freed: an app that outgrows
// its range relocates to the tail and abandons the old one, so with
// doubling growth at most half of each column is dead — the same
// constant-factor overhead as slice append, paid arena-wide instead of
// per-app.
func (ar *colArena) alloc(n int) int {
	off := len(ar.organic)
	ar.organic = append(ar.organic, make([]int64, n)...)
	ar.referral = append(ar.referral, make([]int64, n)...)
	ar.removed = append(ar.removed, make([]int64, n)...)
	ar.fraudSum = append(ar.fraudSum, make([]float64, n)...)
	ar.sessions = append(ar.sessions, make([]int64, n)...)
	ar.sessionSec = append(ar.sessionSec, make([]int64, n)...)
	ar.revenue = append(ar.revenue, make([]float64, n)...)
	ar.activeUser = append(ar.activeUser, make([]int64, n)...)
	return off
}

// app is the store-internal mutable state for a listing.
//
// Daily metrics live in the shard's column arena (see colArena), anchored
// at the first day the app ever recorded activity: the slot for day d is
// column[off + (d - base)], grown on write. The hot paths — every install,
// session, and purchase record, plus the per-day trailing-window
// aggregation in StepDay — are pure index arithmetic over contiguous
// memory, with no hashing and no per-day allocations.
//
// On top of the columns, a rolling 7-day window (winEnd, win) keeps the
// integer chart-window aggregates incrementally: advancing one day adds
// the entering day's totals and subtracts the leaving day's, both exact
// in int64, so the StepDay/enforcer window query is O(1) arithmetic for
// those fields. The two float fields (fraudSum, revenue) are deliberately
// NOT maintained that way: float addition is not associative, and an
// add/subtract rolling sum would drift from the bit patterns the seed
// engine produced. window() re-sums exactly those two fields over the
// dense columns in ascending day order — the same summation order as the
// seed engine — so every chart score and enforcement draw stays
// bit-identical while still never touching a map.
type app struct {
	pkg      string
	title    string
	genre    string
	dev      DeveloperID
	released dates.Date

	installs int64 // cumulative net installs

	ar   *colArena  // the owning shard's column arena
	off  int        // start of this app's range in every column
	n    int        // days in use, index = day - base
	room int        // allocated range length (n <= room)
	base dates.Date // day of slot off; meaningful only when n > 0

	winEnd dates.Date // newest day the rolling window is anchored at
	win    winInts    // exact integer sums over (winEnd-7, winEnd]
}

// dayMetrics is the value view of one app-day: the row the columns are
// transposed from. Snapshot framing, the developer console, and the
// AoS-reference tests read whole rows through metricsAt; the hot paths
// never materialize one.
type dayMetrics struct {
	organic    int64
	referral   int64
	removed    int64
	fraudSum   float64 // sum of fraud scores over the day's installs
	sessions   int64
	sessionSec int64
	revenue    float64
	activeUser int64 // distinct opens proxy (DAU)
}

// winInts are the integer fields of windowMetrics, maintained as an exact
// rolling sum (see the app doc for why the float fields are excluded).
type winInts struct {
	installs   int64
	referral   int64
	sessions   int64
	sessionSec int64
	dau        int64
}

func (w *winInts) add(o winInts) {
	w.installs += o.installs
	w.referral += o.referral
	w.sessions += o.sessions
	w.sessionSec += o.sessionSec
	w.dau += o.dau
}

func (w *winInts) sub(o winInts) {
	w.installs -= o.installs
	w.referral -= o.referral
	w.sessions -= o.sessions
	w.sessionSec -= o.sessionSec
	w.dau -= o.dau
}

// initialRoom is the first column range allocated for an app on its first
// write. Small enough that a catalog where most apps see little activity
// stays cheap, large enough that a window's worth of days fits without a
// relocation.
const initialRoom = 8

// slot returns the arena index of the mutable slot for d, growing the
// app's dense range as needed and rolling the window anchor forward when
// d opens a new newest day. Callers hold the shard write lock, mutate the
// columns at the returned index immediately, and mirror integer deltas
// through winTrack.
func (a *app) slot(d dates.Date) int {
	if a.n == 0 {
		a.base = d
		a.winEnd = d
		if a.room == 0 {
			room := initialRoom
			if h := a.ar.horizon; h > d && int(h-d)+1 > room {
				room = int(h-d) + 1
			}
			a.off = a.ar.alloc(room)
			a.room = room
		}
		a.n = 1
		return a.off
	}
	if d > a.winEnd {
		a.rollTo(d)
	}
	idx := int(d - a.base)
	switch {
	case idx < 0:
		// A write before the first-ever active day: shift right and
		// re-anchor. Rare (never on the engine's monotonic day path).
		shift := -idx
		a.relocate(a.n+shift, shift)
		a.n += shift
		a.base = d
		idx = 0
	case idx >= a.n:
		if idx >= a.room {
			a.relocate(idx+1, 0)
		}
		a.n = idx + 1
	}
	return a.off + idx
}

// relocate moves the app's n used slots into a fresh zeroed range of at
// least need slots (grown by doubling), placing them shift slots in — the
// backfill case re-anchors by shifting right. The old range is abandoned.
func (a *app) relocate(need, shift int) {
	room := a.room
	for room < need {
		room *= 2
	}
	ar := a.ar
	off := ar.alloc(room)
	copy(ar.organic[off+shift:], ar.organic[a.off:a.off+a.n])
	copy(ar.referral[off+shift:], ar.referral[a.off:a.off+a.n])
	copy(ar.removed[off+shift:], ar.removed[a.off:a.off+a.n])
	copy(ar.fraudSum[off+shift:], ar.fraudSum[a.off:a.off+a.n])
	copy(ar.sessions[off+shift:], ar.sessions[a.off:a.off+a.n])
	copy(ar.sessionSec[off+shift:], ar.sessionSec[a.off:a.off+a.n])
	copy(ar.revenue[off+shift:], ar.revenue[a.off:a.off+a.n])
	copy(ar.activeUser[off+shift:], ar.activeUser[a.off:a.off+a.n])
	a.off = off
	a.room = room
}

// slotAt returns the arena index for day d read-only, -1 when d falls
// outside the app's dense range.
func (a *app) slotAt(d dates.Date) int {
	if a.n == 0 {
		return -1
	}
	idx := int(d - a.base)
	if idx < 0 || idx >= a.n {
		return -1
	}
	return a.off + idx
}

// metricsAt transposes day d's column slots back into a row value, false
// when d falls outside the dense range. Cold paths only (console reads,
// snapshot framing, tests).
func (a *app) metricsAt(d dates.Date) (dayMetrics, bool) {
	j := a.slotAt(d)
	if j < 0 {
		return dayMetrics{}, false
	}
	ar := a.ar
	return dayMetrics{
		organic:    ar.organic[j],
		referral:   ar.referral[j],
		removed:    ar.removed[j],
		fraudSum:   ar.fraudSum[j],
		sessions:   ar.sessions[j],
		sessionSec: ar.sessionSec[j],
		revenue:    ar.revenue[j],
		activeUser: ar.activeUser[j],
	}, true
}

// dayInts reads the integer window contribution of day d, zero outside the
// dense range.
func (a *app) dayInts(d dates.Date) winInts {
	j := a.slotAt(d)
	if j < 0 {
		return winInts{}
	}
	ar := a.ar
	return winInts{
		installs:   ar.organic[j] + ar.referral[j],
		referral:   ar.referral[j],
		sessions:   ar.sessions[j],
		sessionSec: ar.sessionSec[j],
		dau:        ar.activeUser[j],
	}
}

// rollTo advances the rolling window anchor so win covers (end-7, end].
// Steady-state day advances are +1 (one subtract, one add); gaps of a full
// window or more rebuild from the columns directly, so the amortized cost
// per simulated day is O(1). The anchor never moves backward: every day
// newer than winEnd is guaranteed to have an all-zero (or absent) slot,
// which keeps the incremental sums exact.
func (a *app) rollTo(end dates.Date) {
	if int(end-a.winEnd) >= chartWindowDays {
		a.win = winInts{}
		for d := end.AddDays(-(chartWindowDays - 1)); d <= end; d++ {
			a.win.add(a.dayInts(d))
		}
	} else {
		for e := a.winEnd + 1; e <= end; e++ {
			a.win.sub(a.dayInts(e.AddDays(-chartWindowDays)))
			a.win.add(a.dayInts(e))
		}
	}
	a.winEnd = end
}

// winTrack mirrors an integer delta just applied to day d into the rolling
// window. The record paths call it after mutating the slot returned by
// slot(), which has already anchored the window at the newest written day.
func (a *app) winTrack(d dates.Date, delta winInts) {
	if d > a.winEnd.AddDays(-chartWindowDays) && d <= a.winEnd {
		a.win.add(delta)
	}
}

// windowMetrics aggregates the trailing-window activity used for chart
// scoring and enforcement.
type windowMetrics struct {
	installs   int64
	referral   int64
	fraudSum   float64
	sessions   int64
	sessionSec int64
	revenue    float64
	dau        int64
}

// window aggregates the trailing days ending at end (inclusive).
//
// The chart-window query at the rolling anchor — the once-per-app-per-day
// StepDay and enforcement pattern — takes the fast path: integer fields
// are O(1) copies of the incremental sums, and only the two float fields
// are re-summed, in ascending day order over the dense float columns,
// preserving the seed engine's float bit patterns (see the app doc). Every
// other query (the previous-window trend term, the enforcer's 30-day
// clawback, arbitrary test queries) scans the dense range directly — still
// pure contiguous arithmetic, never map probes.
//
// Callers hold the shard lock. A chart-window query with end beyond the
// current anchor advances the anchor and therefore requires the shard
// write lock; every current caller (StepDay's shard scan, the enforcer)
// already holds it.
func (a *app) window(end dates.Date, days int) windowMetrics {
	var w windowMetrics
	if a.n == 0 {
		return w
	}
	ar := a.ar
	if days == chartWindowDays {
		if end > a.winEnd {
			a.rollTo(end)
		}
		if end == a.winEnd {
			lo, hi := a.clamp(end.AddDays(-(chartWindowDays - 1)), end)
			fs, rev := ar.fraudSum, ar.revenue
			for j := a.off + lo; j <= a.off+hi; j++ {
				w.fraudSum += fs[j]
				w.revenue += rev[j]
			}
			w.installs = a.win.installs
			w.referral = a.win.referral
			w.sessions = a.win.sessions
			w.sessionSec = a.win.sessionSec
			w.dau = a.win.dau
			return w
		}
	}
	lo, hi := a.clamp(end.AddDays(-(days - 1)), end)
	for j := a.off + lo; j <= a.off+hi; j++ {
		w.installs += ar.organic[j] + ar.referral[j]
		w.referral += ar.referral[j]
		w.fraudSum += ar.fraudSum[j]
		w.sessions += ar.sessions[j]
		w.sessionSec += ar.sessionSec[j]
		w.revenue += ar.revenue[j]
		w.dau += ar.activeUser[j]
	}
	return w
}

// clamp converts an inclusive day range to inclusive range-relative
// indexes, intersected with the dense range (lo > hi when the
// intersection is empty).
func (a *app) clamp(from, to dates.Date) (lo, hi int) {
	lo = int(from - a.base)
	hi = int(to - a.base)
	if lo < 0 {
		lo = 0
	}
	if last := a.n - 1; hi > last {
		hi = last
	}
	return lo, hi
}
