// Package playstore simulates the observable surface of the Google Play
// Store that the paper's measurements touch: an app catalog with developer
// metadata, Google-style binned public install counts, engagement-driven
// top charts recomputed daily, per-developer console analytics, and a
// policy-enforcement module that (imperfectly) filters fraudulent installs.
//
// The simulator intentionally models only what the study can observe —
// profile pages, top charts, and the developer console — plus the internal
// engagement state needed to drive chart ranking the way the paper
// describes ("Google Play Store places apps in top charts based on user
// engagement metrics").
package playstore

import (
	"repro/internal/dates"
)

// DeveloperID uniquely identifies a developer account, mirroring the
// paper's note that developers are identified by their developer ID.
type DeveloperID string

// Developer is a Play Store developer account with the public metadata the
// paper crawls (company name, website, mailing address/country, email).
type Developer struct {
	ID      DeveloperID
	Name    string
	Country string
	Website string
	Email   string
	// Public marks developers that are publicly traded companies
	// (Section 4.3.3 identifies 28 advertised apps from public
	// companies).
	Public bool
}

// InstallSource is the acquisition channel recorded by the developer
// console. The store itself cannot tell incentivized installs apart from
// other referrals; the console only distinguishes organic (store search /
// browse) from third-party referral traffic.
type InstallSource int

const (
	// SourceOrganic is an install originating from store search or
	// top-chart browsing.
	SourceOrganic InstallSource = iota
	// SourceReferral is an install arriving through a third-party
	// referrer (which is how incentivized installs appear).
	SourceReferral
)

func (s InstallSource) String() string {
	switch s {
	case SourceOrganic:
		return "organic"
	case SourceReferral:
		return "referral"
	default:
		return "unknown"
	}
}

// Install is one install event as the store records it. FraudScore in
// [0, 1] abstracts the device/network reputation signals Google's install
// filtering systems consume (device reuse, emulator fingerprints,
// datacenter ASNs); the simulator's users populate it.
type Install struct {
	Day        dates.Date
	Source     InstallSource
	FraudScore float64
}

// Session is an app-usage session contributing to engagement metrics.
type Session struct {
	Day     dates.Date
	Seconds int64
}

// Purchase is an in-app purchase contributing to revenue (and hence to the
// top-grossing chart).
type Purchase struct {
	Day dates.Date
	USD float64
}

// Profile is the public store listing as seen by a crawler: exactly what
// the paper's Play Store crawl collects.
type Profile struct {
	Package       string
	Title         string
	Genre         string
	Released      dates.Date
	InstallBin    int64  // lower bound of the public install bin
	InstallLabel  string // e.g. "1,000+"
	DeveloperID   DeveloperID
	DeveloperName string
	Country       string
	Website       string
	Email         string
}

// ChartEntry is one row of a top chart.
type ChartEntry struct {
	Rank    int // 1-based
	Package string
	Score   float64
}

// ConsoleDay is one day of developer-console analytics for an app.
type ConsoleDay struct {
	Day      dates.Date
	Organic  int64
	Referral int64
	Removed  int64 // installs retroactively filtered by enforcement
}

// app is the store-internal mutable state for a listing.
//
// Daily metrics live in a dense day-indexed slice anchored at the first
// day the app ever recorded activity: the slot for day d is
// days[d-base], grown on write. The hot paths — every install, session,
// and purchase record, plus the per-day trailing-window aggregation in
// StepDay — are pure index arithmetic over contiguous memory, with no
// hashing and no per-day allocations (the map[dates.Date]*dayMetrics this
// replaces paid a hash probe per touch and an allocation per app-day).
//
// On top of the slice, a rolling 7-day window (winEnd, win) keeps the
// integer chart-window aggregates incrementally: advancing one day adds
// the entering day's totals and subtracts the leaving day's, both exact
// in int64, so the StepDay/enforcer window query is O(1) arithmetic for
// those fields. The two float fields (fraudSum, revenue) are deliberately
// NOT maintained that way: float addition is not associative, and an
// add/subtract rolling sum would drift from the bit patterns the seed
// engine produced. window() re-sums exactly those two fields over the
// dense slice in ascending day order — the same summation order as the
// seed engine — so every chart score and enforcement draw stays
// bit-identical while still never touching a map.
type app struct {
	pkg      string
	title    string
	genre    string
	dev      DeveloperID
	released dates.Date

	installs int64 // cumulative net installs

	base dates.Date   // day of days[0]; meaningful only when len(days) > 0
	days []dayMetrics // dense per-day metrics, index = day - base

	winEnd dates.Date // newest day the rolling window is anchored at
	win    winInts    // exact integer sums over (winEnd-7, winEnd]
}

// dayMetrics accumulates one day of activity for an app.
type dayMetrics struct {
	organic    int64
	referral   int64
	removed    int64
	fraudSum   float64 // sum of fraud scores over the day's installs
	sessions   int64
	sessionSec int64
	revenue    float64
	activeUser int64 // distinct opens proxy (DAU)
}

// winInts are the integer fields of windowMetrics, maintained as an exact
// rolling sum (see the app doc for why the float fields are excluded).
type winInts struct {
	installs   int64
	referral   int64
	sessions   int64
	sessionSec int64
	dau        int64
}

func (w *winInts) add(o winInts) {
	w.installs += o.installs
	w.referral += o.referral
	w.sessions += o.sessions
	w.sessionSec += o.sessionSec
	w.dau += o.dau
}

func (w *winInts) sub(o winInts) {
	w.installs -= o.installs
	w.referral -= o.referral
	w.sessions -= o.sessions
	w.sessionSec -= o.sessionSec
	w.dau -= o.dau
}

// day returns the mutable metrics slot for d, growing the dense slice as
// needed and rolling the window anchor forward when d opens a new newest
// day. Callers hold the shard write lock, mutate the slot immediately,
// and mirror integer deltas through winTrack.
func (a *app) day(d dates.Date) *dayMetrics {
	if len(a.days) == 0 {
		a.base = d
		a.winEnd = d
		a.days = append(a.days, dayMetrics{})
		return &a.days[0]
	}
	if d > a.winEnd {
		a.rollTo(d)
	}
	idx := int(d - a.base)
	switch {
	case idx < 0:
		// A write before the first-ever active day: shift right and
		// re-anchor. Rare (never on the engine's monotonic day path).
		grown := make([]dayMetrics, len(a.days)-idx)
		copy(grown[-idx:], a.days)
		a.days = grown
		a.base = d
		idx = 0
	case idx >= len(a.days):
		a.days = append(a.days, make([]dayMetrics, idx+1-len(a.days))...)
	}
	return &a.days[idx]
}

// dayAt returns the metrics slot for d read-only, nil when d falls outside
// the app's dense range.
func (a *app) dayAt(d dates.Date) *dayMetrics {
	if len(a.days) == 0 {
		return nil
	}
	idx := int(d - a.base)
	if idx < 0 || idx >= len(a.days) {
		return nil
	}
	return &a.days[idx]
}

// dayInts reads the integer window contribution of day d, zero outside the
// dense range.
func (a *app) dayInts(d dates.Date) winInts {
	m := a.dayAt(d)
	if m == nil {
		return winInts{}
	}
	return winInts{
		installs:   m.organic + m.referral,
		referral:   m.referral,
		sessions:   m.sessions,
		sessionSec: m.sessionSec,
		dau:        m.activeUser,
	}
}

// rollTo advances the rolling window anchor so win covers (end-7, end].
// Steady-state day advances are +1 (one subtract, one add); gaps of a full
// window or more rebuild from the slice directly, so the amortized cost
// per simulated day is O(1). The anchor never moves backward: every day
// newer than winEnd is guaranteed to have an all-zero (or absent) slot,
// which keeps the incremental sums exact.
func (a *app) rollTo(end dates.Date) {
	if int(end-a.winEnd) >= chartWindowDays {
		a.win = winInts{}
		for d := end.AddDays(-(chartWindowDays - 1)); d <= end; d++ {
			a.win.add(a.dayInts(d))
		}
	} else {
		for e := a.winEnd + 1; e <= end; e++ {
			a.win.sub(a.dayInts(e.AddDays(-chartWindowDays)))
			a.win.add(a.dayInts(e))
		}
	}
	a.winEnd = end
}

// winTrack mirrors an integer delta just applied to day d into the rolling
// window. The record paths call it after mutating the day slot returned by
// day(), which has already anchored the window at the newest written day.
func (a *app) winTrack(d dates.Date, delta winInts) {
	if d > a.winEnd.AddDays(-chartWindowDays) && d <= a.winEnd {
		a.win.add(delta)
	}
}

// windowMetrics aggregates the trailing-window activity used for chart
// scoring and enforcement.
type windowMetrics struct {
	installs   int64
	referral   int64
	fraudSum   float64
	sessions   int64
	sessionSec int64
	revenue    float64
	dau        int64
}

// window aggregates the trailing days ending at end (inclusive).
//
// The chart-window query at the rolling anchor — the once-per-app-per-day
// StepDay and enforcement pattern — takes the fast path: integer fields
// are O(1) copies of the incremental sums, and only the two float fields
// are re-summed, in ascending day order over the dense slice, preserving
// the seed engine's float bit patterns (see the app doc). Every other
// query (the previous-window trend term, the enforcer's 30-day clawback,
// arbitrary test queries) scans the dense range directly — still pure
// contiguous arithmetic, never map probes.
//
// Callers hold the shard lock. A chart-window query with end beyond the
// current anchor advances the anchor and therefore requires the shard
// write lock; every current caller (StepDay's shard scan, the enforcer)
// already holds it.
func (a *app) window(end dates.Date, days int) windowMetrics {
	var w windowMetrics
	if len(a.days) == 0 {
		return w
	}
	if days == chartWindowDays {
		if end > a.winEnd {
			a.rollTo(end)
		}
		if end == a.winEnd {
			lo, hi := a.clamp(end.AddDays(-(chartWindowDays - 1)), end)
			for i := lo; i <= hi; i++ {
				w.fraudSum += a.days[i].fraudSum
				w.revenue += a.days[i].revenue
			}
			w.installs = a.win.installs
			w.referral = a.win.referral
			w.sessions = a.win.sessions
			w.sessionSec = a.win.sessionSec
			w.dau = a.win.dau
			return w
		}
	}
	lo, hi := a.clamp(end.AddDays(-(days - 1)), end)
	for i := lo; i <= hi; i++ {
		m := &a.days[i]
		w.installs += m.organic + m.referral
		w.referral += m.referral
		w.fraudSum += m.fraudSum
		w.sessions += m.sessions
		w.sessionSec += m.sessionSec
		w.revenue += m.revenue
		w.dau += m.activeUser
	}
	return w
}

// clamp converts an inclusive day range to inclusive slice indexes,
// intersected with the dense range (lo > hi when the intersection is
// empty).
func (a *app) clamp(from, to dates.Date) (lo, hi int) {
	lo = int(from - a.base)
	hi = int(to - a.base)
	if lo < 0 {
		lo = 0
	}
	if last := len(a.days) - 1; hi > last {
		hi = last
	}
	return lo, hi
}
