// Package playstore simulates the observable surface of the Google Play
// Store that the paper's measurements touch: an app catalog with developer
// metadata, Google-style binned public install counts, engagement-driven
// top charts recomputed daily, per-developer console analytics, and a
// policy-enforcement module that (imperfectly) filters fraudulent installs.
//
// The simulator intentionally models only what the study can observe —
// profile pages, top charts, and the developer console — plus the internal
// engagement state needed to drive chart ranking the way the paper
// describes ("Google Play Store places apps in top charts based on user
// engagement metrics").
package playstore

import (
	"repro/internal/dates"
)

// DeveloperID uniquely identifies a developer account, mirroring the
// paper's note that developers are identified by their developer ID.
type DeveloperID string

// Developer is a Play Store developer account with the public metadata the
// paper crawls (company name, website, mailing address/country, email).
type Developer struct {
	ID      DeveloperID
	Name    string
	Country string
	Website string
	Email   string
	// Public marks developers that are publicly traded companies
	// (Section 4.3.3 identifies 28 advertised apps from public
	// companies).
	Public bool
}

// InstallSource is the acquisition channel recorded by the developer
// console. The store itself cannot tell incentivized installs apart from
// other referrals; the console only distinguishes organic (store search /
// browse) from third-party referral traffic.
type InstallSource int

const (
	// SourceOrganic is an install originating from store search or
	// top-chart browsing.
	SourceOrganic InstallSource = iota
	// SourceReferral is an install arriving through a third-party
	// referrer (which is how incentivized installs appear).
	SourceReferral
)

func (s InstallSource) String() string {
	switch s {
	case SourceOrganic:
		return "organic"
	case SourceReferral:
		return "referral"
	default:
		return "unknown"
	}
}

// Install is one install event as the store records it. FraudScore in
// [0, 1] abstracts the device/network reputation signals Google's install
// filtering systems consume (device reuse, emulator fingerprints,
// datacenter ASNs); the simulator's users populate it.
type Install struct {
	Day        dates.Date
	Source     InstallSource
	FraudScore float64
}

// Session is an app-usage session contributing to engagement metrics.
type Session struct {
	Day     dates.Date
	Seconds int64
}

// Purchase is an in-app purchase contributing to revenue (and hence to the
// top-grossing chart).
type Purchase struct {
	Day dates.Date
	USD float64
}

// Profile is the public store listing as seen by a crawler: exactly what
// the paper's Play Store crawl collects.
type Profile struct {
	Package       string
	Title         string
	Genre         string
	Released      dates.Date
	InstallBin    int64  // lower bound of the public install bin
	InstallLabel  string // e.g. "1,000+"
	DeveloperID   DeveloperID
	DeveloperName string
	Country       string
	Website       string
	Email         string
}

// ChartEntry is one row of a top chart.
type ChartEntry struct {
	Rank    int // 1-based
	Package string
	Score   float64
}

// ConsoleDay is one day of developer-console analytics for an app.
type ConsoleDay struct {
	Day      dates.Date
	Organic  int64
	Referral int64
	Removed  int64 // installs retroactively filtered by enforcement
}

// app is the store-internal mutable state for a listing.
type app struct {
	pkg      string
	title    string
	genre    string
	dev      DeveloperID
	released dates.Date

	installs int64 // cumulative net installs

	daily map[dates.Date]*dayMetrics
}

// dayMetrics accumulates one day of activity for an app.
type dayMetrics struct {
	organic    int64
	referral   int64
	removed    int64
	fraudSum   float64 // sum of fraud scores over the day's installs
	sessions   int64
	sessionSec int64
	revenue    float64
	activeUser int64 // distinct opens proxy (DAU)
}

func (a *app) day(d dates.Date) *dayMetrics {
	m, ok := a.daily[d]
	if !ok {
		m = &dayMetrics{}
		a.daily[d] = m
	}
	return m
}

// windowMetrics aggregates the trailing-window activity used for chart
// scoring and enforcement.
type windowMetrics struct {
	installs   int64
	referral   int64
	fraudSum   float64
	sessions   int64
	sessionSec int64
	revenue    float64
	dau        int64
}

func (a *app) window(end dates.Date, days int) windowMetrics {
	var w windowMetrics
	for d := end.AddDays(-(days - 1)); d <= end; d++ {
		m, ok := a.daily[d]
		if !ok {
			continue
		}
		w.installs += m.organic + m.referral
		w.referral += m.referral
		w.fraudSum += m.fraudSum
		w.sessions += m.sessions
		w.sessionSec += m.sessionSec
		w.revenue += m.revenue
		w.dau += m.activeUser
	}
	return w
}
