package playstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dates"
)

// Common store errors.
var (
	ErrUnknownApp       = errors.New("playstore: unknown app")
	ErrUnknownDeveloper = errors.New("playstore: unknown developer")
	ErrDuplicateApp     = errors.New("playstore: duplicate package name")
)

// Store is the simulated Play Store. All methods are safe for concurrent
// use; the HTTP facade in internal/playapi serves it from multiple
// goroutines.
type Store struct {
	mu        sync.RWMutex
	devs      map[DeveloperID]*Developer
	apps      map[string]*app
	pkgs      []string // stable iteration order (insertion)
	today     dates.Date
	charts    map[string][]ChartEntry                // latest computed charts
	history   map[string]map[dates.Date][]ChartEntry // chart name -> day -> entries
	enforcer  *Enforcer
	scoring   ChartScoring
	chartSize int
}

// New creates an empty store positioned at the given day.
func New(today dates.Date) *Store {
	return &Store{
		devs:    map[DeveloperID]*Developer{},
		apps:    map[string]*app{},
		today:   today,
		charts:  map[string][]ChartEntry{},
		history: map[string]map[dates.Date][]ChartEntry{},
	}
}

// SetEnforcer installs a policy-enforcement module that runs during
// StepDay. A nil enforcer disables filtering.
func (s *Store) SetEnforcer(e *Enforcer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enforcer = e
}

// Today returns the store's current simulation day.
func (s *Store) Today() dates.Date {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.today
}

// AddDeveloper registers a developer account.
func (s *Store) AddDeveloper(d Developer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := d
	s.devs[d.ID] = &cp
}

// Developer returns developer metadata by ID.
func (s *Store) Developer(id DeveloperID) (Developer, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.devs[id]
	if !ok {
		return Developer{}, fmt.Errorf("%w: %s", ErrUnknownDeveloper, id)
	}
	return *d, nil
}

// Listing describes a new app to publish.
type Listing struct {
	Package   string
	Title     string
	Genre     string
	Developer DeveloperID
	Released  dates.Date
}

// Publish adds an app listing to the catalog.
func (s *Store) Publish(l Listing) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.apps[l.Package]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateApp, l.Package)
	}
	if _, ok := s.devs[l.Developer]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDeveloper, l.Developer)
	}
	s.apps[l.Package] = &app{
		pkg:      l.Package,
		title:    l.Title,
		genre:    l.Genre,
		dev:      l.Developer,
		released: l.Released,
		daily:    map[dates.Date]*dayMetrics{},
	}
	s.pkgs = append(s.pkgs, l.Package)
	return nil
}

// NumApps returns the catalog size.
func (s *Store) NumApps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.apps)
}

// Packages returns all package names in publication order.
func (s *Store) Packages() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.pkgs...)
}

// RecordInstall records one install event for an app.
func (s *Store) RecordInstall(pkg string, in Install) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.apps[pkg]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	m := a.day(in.Day)
	switch in.Source {
	case SourceOrganic:
		m.organic++
	default:
		m.referral++
	}
	m.fraudSum += clamp01(in.FraudScore)
	a.installs++
	return nil
}

// RecordInstallBatch records n installs sharing a day, source, and mean
// fraud score. The simulation engine uses it for high-volume organic
// traffic where per-event recording would be wasteful; the aggregate
// counters are indistinguishable from n RecordInstall calls with the same
// mean fraud.
func (s *Store) RecordInstallBatch(pkg string, day dates.Date, n int64, source InstallSource, meanFraud float64) error {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.apps[pkg]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	m := a.day(day)
	switch source {
	case SourceOrganic:
		m.organic += n
	default:
		m.referral += n
	}
	m.fraudSum += clamp01(meanFraud) * float64(n)
	a.installs += n
	return nil
}

// RecordSessionBatch records n sessions of secondsPer seconds each.
func (s *Store) RecordSessionBatch(pkg string, day dates.Date, n, secondsPer int64) error {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.apps[pkg]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	m := a.day(day)
	m.sessions += n
	m.sessionSec += n * secondsPer
	m.activeUser += n
	return nil
}

// RecordSession records an app-usage session (drives DAU and session-length
// engagement metrics).
func (s *Store) RecordSession(pkg string, sess Session) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.apps[pkg]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	m := a.day(sess.Day)
	m.sessions++
	m.sessionSec += sess.Seconds
	m.activeUser++ // one session == one active-user contribution
	return nil
}

// RecordPurchase records an in-app purchase.
func (s *Store) RecordPurchase(pkg string, p Purchase) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.apps[pkg]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	a.day(p.Day).revenue += p.USD
	return nil
}

// SeedInstalls initializes an app's lifetime install counter without
// generating daily activity; the world builder uses it to give pre-existing
// apps their historical popularity.
func (s *Store) SeedInstalls(pkg string, n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.apps[pkg]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	if n < 0 {
		n = 0
	}
	a.installs = n
	return nil
}

// ExactInstalls exposes the store-internal exact install counter; the
// simulator and tests use it, the crawler never sees it (it only sees
// Profile.InstallBin, like the paper).
func (s *Store) ExactInstalls(pkg string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.apps[pkg]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	return a.installs, nil
}

// Profile returns the public store listing for an app.
func (s *Store) Profile(pkg string) (Profile, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.apps[pkg]
	if !ok {
		return Profile{}, fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	dev := s.devs[a.dev]
	bin := InstallBin(a.installs)
	return Profile{
		Package:       a.pkg,
		Title:         a.title,
		Genre:         a.genre,
		Released:      a.released,
		InstallBin:    bin,
		InstallLabel:  BinLabel(bin),
		DeveloperID:   a.dev,
		DeveloperName: dev.Name,
		Country:       dev.Country,
		Website:       dev.Website,
		Email:         dev.Email,
	}, nil
}

// Console returns developer-console analytics for an app between two dates
// inclusive. Unlike Profile, this is the app developer's private view with
// exact per-day acquisition numbers.
func (s *Store) Console(pkg string, from, to dates.Date) ([]ConsoleDay, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.apps[pkg]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	var out []ConsoleDay
	for d := from; d <= to; d++ {
		m, ok := a.daily[d]
		if !ok {
			out = append(out, ConsoleDay{Day: d})
			continue
		}
		out = append(out, ConsoleDay{Day: d, Organic: m.organic, Referral: m.referral, Removed: m.removed})
	}
	return out, nil
}

// StepDay advances the store to the given day: it runs enforcement over the
// trailing window and recomputes all top charts. Days must be stepped in
// nondecreasing order.
func (s *Store) StepDay(day dates.Date) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.today = day
	if s.enforcer != nil {
		for _, pkg := range s.pkgs {
			s.enforcer.scan(s.apps[pkg], day)
		}
	}
	s.computeChartsLocked(day)
}

// sortedByScore ranks packages by descending score with a stable package
// tiebreak so chart output is deterministic.
func sortedByScore(scores map[string]float64, limit int) []ChartEntry {
	type kv struct {
		pkg   string
		score float64
	}
	arr := make([]kv, 0, len(scores))
	for p, sc := range scores {
		if sc > 0 {
			arr = append(arr, kv{p, sc})
		}
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].score != arr[j].score {
			return arr[i].score > arr[j].score
		}
		return arr[i].pkg < arr[j].pkg
	})
	if len(arr) > limit {
		arr = arr[:limit]
	}
	out := make([]ChartEntry, len(arr))
	for i, e := range arr {
		out[i] = ChartEntry{Rank: i + 1, Package: e.pkg, Score: e.score}
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
