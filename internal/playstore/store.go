package playstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/conc"
	"repro/internal/dates"
	"repro/internal/randx"
)

// EnforceAction records one enforcement decision taken by StepDay: the
// scanned app and the net installs clawed back (0 when the detection fired
// but nothing was removable).
type EnforceAction struct {
	Package string
	Removed int64
}

// Common store errors.
var (
	ErrUnknownApp       = errors.New("playstore: unknown app")
	ErrUnknownDeveloper = errors.New("playstore: unknown developer")
	ErrDuplicateApp     = errors.New("playstore: duplicate package name")
)

// NumShards is how many independently locked shards the catalog is split
// into. Writes to apps on different shards never contend, which is what
// lets the parallel day engine record millions of installs per simulated
// day across all cores.
const NumShards = 32

// shard holds one slice of the app catalog under its own lock, plus the
// column arena backing every resident app's per-day metrics (see
// colArena). The arena rides the shard so its growth and every column
// read/write stay under the one lock the app paths already hold.
type shard struct {
	mu   sync.RWMutex
	apps map[string]*app
	cols colArena
}

// Store is the simulated Play Store. All methods are safe for concurrent
// use; the HTTP facade in internal/playapi serves it from multiple
// goroutines and the simulation engine records activity from a worker
// pool. App state is sharded by package-name hash so per-app writes on
// different apps proceed in parallel; store-wide metadata (developers,
// charts, the current day) lives under a separate coarse lock that the hot
// write path never takes.
type Store struct {
	shards [NumShards]shard

	mu        sync.RWMutex // guards everything below
	devs      map[DeveloperID]*Developer
	pkgs      []string // stable iteration order (insertion)
	today     dates.Date
	charts    map[string][]ChartEntry                  // latest computed charts
	history   map[string]map[dates.Date][]ChartEntry   // chart name -> day -> entries
	ranks     map[string]map[dates.Date]map[string]int // chart name -> day -> package -> rank
	enforcer  *Enforcer
	scoring   ChartScoring
	chartSize int
	// lastEnforce is the canonical (package-sorted) list of enforcement
	// actions taken by the most recent StepDay; the run log emits it as
	// enforcement events and replay cross-checks its own recomputation
	// against it.
	lastEnforce []EnforceAction
	// stepWorkers bounds StepDay's shard fan-out (0 = one goroutine per
	// shard). The sim engine wires its Workers knob through here so a
	// Workers=1 run is genuinely serial end to end.
	stepWorkers int
}

// New creates an empty store positioned at the given day.
func New(today dates.Date) *Store {
	s := &Store{
		devs:    map[DeveloperID]*Developer{},
		today:   today,
		charts:  map[string][]ChartEntry{},
		history: map[string]map[dates.Date][]ChartEntry{},
		ranks:   map[string]map[dates.Date]map[string]int{},
	}
	for i := range s.shards {
		s.shards[i].apps = map[string]*app{}
	}
	return s
}

// shardFor maps a package name onto its shard.
func (s *Store) shardFor(pkg string) *shard {
	return &s.shards[randx.Hash64(pkg)%NumShards]
}

// SetStepWorkers bounds how many goroutines StepDay fans out over the
// shards. n <= 0 or n > NumShards means one per shard; 1 runs the scan
// serially. The result of StepDay is identical for every setting.
func (s *Store) SetStepWorkers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stepWorkers = n
}

// SetHorizon tells the column arenas the last day the run expects to
// write, so each app's first range is sized to reach it instead of
// walking the relocation doubling ladder (which strands abandoned
// ranges — over half the arena on a full-window run). Purely an
// allocation-sizing hint: every value, query, and snapshot byte is
// identical with or without it, and writes past the horizon still grow
// by doubling.
func (s *Store) SetHorizon(end dates.Date) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.cols.horizon = end
		sh.mu.Unlock()
	}
}

// SetEnforcer installs a policy-enforcement module that runs during
// StepDay. A nil enforcer disables filtering.
func (s *Store) SetEnforcer(e *Enforcer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enforcer = e
}

// Enforcer returns the installed policy-enforcement module (nil when
// filtering is disabled). Snapshot decoding reattaches the serialized
// enforcer this way.
func (s *Store) Enforcer() *Enforcer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.enforcer
}

// LastEnforcementActions returns the enforcement actions taken by the most
// recent StepDay, sorted by package.
func (s *Store) LastEnforcementActions() []EnforceAction {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]EnforceAction(nil), s.lastEnforce...)
}

// Today returns the store's current simulation day.
func (s *Store) Today() dates.Date {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.today
}

// AddDeveloper registers a developer account.
func (s *Store) AddDeveloper(d Developer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := d
	s.devs[d.ID] = &cp
}

// Developer returns developer metadata by ID.
func (s *Store) Developer(id DeveloperID) (Developer, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.devs[id]
	if !ok {
		return Developer{}, fmt.Errorf("%w: %s", ErrUnknownDeveloper, id)
	}
	return *d, nil
}

// Listing describes a new app to publish.
type Listing struct {
	Package   string
	Title     string
	Genre     string
	Developer DeveloperID
	Released  dates.Date
}

// Publish adds an app listing to the catalog.
func (s *Store) Publish(l Listing) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.devs[l.Developer]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDeveloper, l.Developer)
	}
	sh := s.shardFor(l.Package)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.apps[l.Package]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateApp, l.Package)
	}
	sh.apps[l.Package] = &app{
		pkg:      l.Package,
		title:    l.Title,
		genre:    l.Genre,
		dev:      l.Developer,
		released: l.Released,
		ar:       &sh.cols,
	}
	s.pkgs = append(s.pkgs, l.Package)
	return nil
}

// NumApps returns the catalog size.
func (s *Store) NumApps() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pkgs)
}

// Packages returns all package names in publication order.
func (s *Store) Packages() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.pkgs...)
}

// lookup returns the shard and app for pkg without holding any lock on
// return; callers lock the shard around their access.
func (s *Store) lookup(pkg string) (*shard, *app, error) {
	sh := s.shardFor(pkg)
	sh.mu.RLock()
	a, ok := sh.apps[pkg]
	sh.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownApp, pkg)
	}
	return sh, a, nil
}

// RecordInstall records one install event for an app.
func (s *Store) RecordInstall(pkg string, in Install) error {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.recordInstall(in)
	return nil
}

// recordInstall applies one install event; the caller holds the shard
// write lock (or owns the app exclusively under the handle batch contract).
func (a *app) recordInstall(in Install) {
	j := a.slot(in.Day)
	delta := winInts{installs: 1}
	switch in.Source {
	case SourceOrganic:
		a.ar.organic[j]++
	default:
		a.ar.referral[j]++
		delta.referral = 1
	}
	a.ar.fraudSum[j] += clamp01(in.FraudScore)
	a.installs++
	a.winTrack(in.Day, delta)
}

// RecordInstallBatch records n installs sharing a day, source, and mean
// fraud score. The simulation engine uses it for high-volume organic
// traffic where per-event recording would be wasteful; the aggregate
// counters are indistinguishable from n RecordInstall calls with the same
// mean fraud.
func (s *Store) RecordInstallBatch(pkg string, day dates.Date, n int64, source InstallSource, meanFraud float64) error {
	if n <= 0 {
		return nil
	}
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.recordInstallBatch(day, n, source, meanFraud)
	return nil
}

// recordInstallBatch applies n installs sharing a day, source, and mean
// fraud score; the caller holds the shard write lock. n <= 0 is a no-op.
func (a *app) recordInstallBatch(day dates.Date, n int64, source InstallSource, meanFraud float64) {
	if n <= 0 {
		return
	}
	j := a.slot(day)
	delta := winInts{installs: n}
	switch source {
	case SourceOrganic:
		a.ar.organic[j] += n
	default:
		a.ar.referral[j] += n
		delta.referral = n
	}
	a.ar.fraudSum[j] += clamp01(meanFraud) * float64(n)
	a.installs += n
	a.winTrack(day, delta)
}

// RecordSessionBatch records n sessions of secondsPer seconds each.
func (s *Store) RecordSessionBatch(pkg string, day dates.Date, n, secondsPer int64) error {
	if n <= 0 {
		return nil
	}
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.recordSessionBatch(day, n, secondsPer)
	return nil
}

// recordSessionBatch applies n sessions of secondsPer seconds each; the
// caller holds the shard write lock. n <= 0 is a no-op.
func (a *app) recordSessionBatch(day dates.Date, n, secondsPer int64) {
	if n <= 0 {
		return
	}
	j := a.slot(day)
	a.ar.sessions[j] += n
	a.ar.sessionSec[j] += n * secondsPer
	a.ar.activeUser[j] += n
	a.winTrack(day, winInts{sessions: n, sessionSec: n * secondsPer, dau: n})
}

// RecordSession records an app-usage session (drives DAU and session-length
// engagement metrics).
func (s *Store) RecordSession(pkg string, sess Session) error {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.recordSession(sess)
	return nil
}

// recordSession applies one session; the caller holds the shard write lock.
func (a *app) recordSession(sess Session) {
	j := a.slot(sess.Day)
	a.ar.sessions[j]++
	a.ar.sessionSec[j] += sess.Seconds
	a.ar.activeUser[j]++ // one session == one active-user contribution
	a.winTrack(sess.Day, winInts{sessions: 1, sessionSec: sess.Seconds, dau: 1})
}

// RecordPurchase records an in-app purchase.
func (s *Store) RecordPurchase(pkg string, p Purchase) error {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.recordPurchase(p)
	return nil
}

// recordPurchase applies one purchase; the caller holds the shard write
// lock.
func (a *app) recordPurchase(p Purchase) {
	a.ar.revenue[a.slot(p.Day)] += p.USD
}

// SeedInstalls initializes an app's lifetime install counter without
// generating daily activity; the world builder uses it to give pre-existing
// apps their historical popularity.
func (s *Store) SeedInstalls(pkg string, n int64) error {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n < 0 {
		n = 0
	}
	a.installs = n
	return nil
}

// ExactInstalls exposes the store-internal exact install counter; the
// simulator and tests use it, the crawler never sees it (it only sees
// Profile.InstallBin, like the paper).
func (s *Store) ExactInstalls(pkg string) (int64, error) {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return 0, err
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return a.installs, nil
}

// Profile returns the public store listing for an app.
func (s *Store) Profile(pkg string) (Profile, error) {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return Profile{}, err
	}
	sh.mu.RLock()
	installs := a.installs
	devID := a.dev
	sh.mu.RUnlock()

	s.mu.RLock()
	dev := s.devs[devID]
	s.mu.RUnlock()

	bin := InstallBin(installs)
	return Profile{
		Package:       a.pkg,
		Title:         a.title,
		Genre:         a.genre,
		Released:      a.released,
		InstallBin:    bin,
		InstallLabel:  BinLabel(bin),
		DeveloperID:   devID,
		DeveloperName: dev.Name,
		Country:       dev.Country,
		Website:       dev.Website,
		Email:         dev.Email,
	}, nil
}

// Console returns developer-console analytics for an app between two dates
// inclusive. Unlike Profile, this is the app developer's private view with
// exact per-day acquisition numbers.
func (s *Store) Console(pkg string, from, to dates.Date) ([]ConsoleDay, error) {
	sh, a, err := s.lookup(pkg)
	if err != nil {
		return nil, err
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if to < from {
		return nil, nil
	}
	out := make([]ConsoleDay, 0, int(to-from)+1)
	for d := from; d <= to; d++ {
		cd := ConsoleDay{Day: d}
		if j := a.slotAt(d); j >= 0 {
			cd.Organic, cd.Referral, cd.Removed = a.ar.organic[j], a.ar.referral[j], a.ar.removed[j]
		}
		out = append(out, cd)
	}
	return out, nil
}

// StepDay advances the store to the given day: it runs enforcement over
// the trailing window and recomputes all top charts. Days must be stepped
// in nondecreasing order. The scan and score pass fans out over the
// shards — each worker walks its shard's apps under that shard's lock,
// appending positive scores to pre-sized per-shard slices (no map churn on
// the daily path) — and the partials are then merged through a bounded
// top-K selection, so ranking costs O(n log k) in the chart size k rather
// than a full catalog sort. Enforcement decisions are keyed by (app, day)
// and the selection is order-independent, so the result is identical no
// matter how the fan-out is scheduled.
func (s *Store) StepDay(day dates.Date) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.today = day

	type partial struct {
		free, games, grossing []scoredApp
		enforced              []EnforceAction
	}
	partials := make([]partial, NumShards)
	scanShard := func(i int) {
		sh := &s.shards[i]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		p := partial{
			free:     make([]scoredApp, 0, len(sh.apps)),
			games:    make([]scoredApp, 0, len(sh.apps)),
			grossing: make([]scoredApp, 0, len(sh.apps)),
		}
		for _, a := range sh.apps {
			// One trailing-window aggregation serves both the enforcer
			// scan and chart scoring (the scan only mutates removal
			// counters, never window inputs).
			w := a.window(day, chartWindowDays)
			if s.enforcer != nil {
				if removed := s.enforcer.scan(a, day, w); removed >= 0 {
					p.enforced = append(p.enforced, EnforceAction{Package: a.pkg, Removed: removed})
				}
			}
			if a.released > day {
				continue
			}
			prev := a.window(day.AddDays(-chartWindowDays), chartWindowDays)
			if fs := freeScore(w, prev, s.scoring); fs > 0 {
				p.free = append(p.free, scoredApp{a.pkg, fs})
				if gameGenres[a.genre] {
					p.games = append(p.games, scoredApp{a.pkg, fs})
				}
			}
			if gs := grossScore(w); gs > 0 {
				p.grossing = append(p.grossing, scoredApp{a.pkg, gs})
			}
		}
		partials[i] = p
	}
	workers := s.stepWorkers
	if workers <= 0 || workers > NumShards {
		workers = NumShards
	}
	conc.ForN(workers, NumShards, scanShard)

	// Merge the per-shard enforcement actions into one canonical list:
	// shard-map iteration order varies run to run, so the merged list is
	// sorted by package before anything observable (the run log) sees it.
	s.lastEnforce = s.lastEnforce[:0]
	for i := range partials {
		s.lastEnforce = append(s.lastEnforce, partials[i].enforced...)
	}
	sort.Slice(s.lastEnforce, func(i, j int) bool {
		return s.lastEnforce[i].Package < s.lastEnforce[j].Package
	})

	size := s.effectiveChartSizeLocked()
	free := newTopK(size)
	games := newTopK(size)
	grossing := newTopK(size)
	for i := range partials {
		for _, e := range partials[i].free {
			free.push(e)
		}
		for _, e := range partials[i].games {
			games.push(e)
		}
		for _, e := range partials[i].grossing {
			grossing.push(e)
		}
	}
	s.setChartLocked(ChartTopFree, day, free.ranked())
	s.setChartLocked(ChartTopGames, day, games.ranked())
	s.setChartLocked(ChartTopGrossing, day, grossing.ranked())
}

// setChartLocked publishes one day's chart: the latest entries, the
// per-day history, and the package->rank index that makes ChartRank and
// ChartRanks O(1) in the chart size.
func (s *Store) setChartLocked(name string, day dates.Date, entries []ChartEntry) {
	s.charts[name] = entries
	h, ok := s.history[name]
	if !ok {
		h = map[dates.Date][]ChartEntry{}
		s.history[name] = h
	}
	h[day] = entries
	idx := make(map[string]int, len(entries))
	for _, e := range entries {
		idx[e.Package] = e.Rank
	}
	r, ok := s.ranks[name]
	if !ok {
		r = map[dates.Date]map[string]int{}
		s.ranks[name] = r
	}
	r[day] = idx
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
