package playstore

import "strconv"

// binLadder replicates the Google Play public install-count bins: the store
// shows "N+" where N is the largest ladder value not exceeding the exact
// install count ("Google reports installs in bins of a lower-bound
// 'minimum' number of installs", Section 4.2).
var binLadder = []int64{
	0, 1, 5, 10, 50, 100, 500,
	1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
	1_000_000, 5_000_000, 10_000_000, 50_000_000, 100_000_000,
	500_000_000, 1_000_000_000, 5_000_000_000, 10_000_000_000,
}

// InstallBin returns the public lower-bound bin for an exact install count.
func InstallBin(n int64) int64 {
	if n < 0 {
		return 0
	}
	bin := int64(0)
	for _, b := range binLadder {
		if n >= b {
			bin = b
		} else {
			break
		}
	}
	return bin
}

// NextBin returns the smallest ladder value strictly greater than bin, or
// bin itself if it is the top of the ladder. Useful for bin arithmetic in
// analyses.
func NextBin(bin int64) int64 {
	for _, b := range binLadder {
		if b > bin {
			return b
		}
	}
	return bin
}

// BinLabel formats a bin the way the store displays it ("1,000+").
func BinLabel(bin int64) string {
	return groupDigits(bin) + "+"
}

func groupDigits(n int64) string {
	s := strconv.FormatInt(n, 10)
	if len(s) <= 3 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
