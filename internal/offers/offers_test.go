package offers

import (
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
)

func TestTypeStringAndActivity(t *testing.T) {
	cases := []struct {
		tp       Type
		str      string
		activity bool
	}{
		{NoActivity, "No activity", false},
		{Usage, "Activity (Usage)", true},
		{Registration, "Activity (Registration)", true},
		{Purchase, "Activity (Purchase)", true},
	}
	for _, c := range cases {
		if c.tp.String() != c.str {
			t.Errorf("String() = %q, want %q", c.tp.String(), c.str)
		}
		if c.tp.IsActivity() != c.activity {
			t.Errorf("%v.IsActivity() = %v", c.tp, c.tp.IsActivity())
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Error("unknown type String")
	}
}

func TestNormalizePayout(t *testing.T) {
	// gcash-style: 1000 points = $1.
	if got := NormalizePayout(850, 1000); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("NormalizePayout = %g, want 0.85", got)
	}
	if NormalizePayout(100, 0) != 0 || NormalizePayout(-5, 100) != 0 {
		t.Error("invalid inputs should yield 0")
	}
}

func TestOfferKeyDedup(t *testing.T) {
	a := Offer{IIP: "Fyber", AppPackage: "com.x", Description: "Install and Register"}
	b := Offer{IIP: "Fyber", AppPackage: "com.x", Description: "install and register"}
	c := Offer{IIP: "RankApp", AppPackage: "com.x", Description: "Install and Register"}
	if a.Key() != b.Key() {
		t.Error("case-insensitive dedup failed")
	}
	if a.Key() == c.Key() {
		t.Error("different IIPs must not dedup")
	}
}

func TestOfferWindow(t *testing.T) {
	o := Offer{FirstSeen: 10, LastSeen: 20}
	w := o.Window()
	if w.Days() != 11 {
		t.Errorf("window days = %d, want 11", w.Days())
	}
}

func TestRuleClassifierPaperExamples(t *testing.T) {
	cls := RuleClassifier{}
	cases := []struct {
		desc string
		want Type
	}{
		// Examples quoted verbatim in the paper.
		{"Install and Launch", NoActivity},
		{"Install and Register", Registration},
		{"Install and Reach level 10", Usage},
		{"Install and make a $4.99 in-app purchase", Purchase},
		{"Install & Make any purchase", Purchase},
		{"Install, register, and download a song", Usage},
		{"Install & Reach level 10", Usage},
		{"Install and Open", NoActivity},
	}
	for _, c := range cases {
		if got := cls.Classify(c.desc); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.desc, got, c.want)
		}
	}
}

func TestRuleClassifierPurchaseDominates(t *testing.T) {
	cls := RuleClassifier{}
	if got := cls.Classify("Install, register and purchase a subscription"); got != Purchase {
		t.Errorf("purchase should dominate registration, got %v", got)
	}
}

func TestIsArbitrage(t *testing.T) {
	cases := []struct {
		desc string
		want bool
	}{
		{"Install and reach 850 points by completing tasks (watch videos, complete surveys)", true},
		{"Install and earn 500 coins by completing offers inside the app", true},
		{"Install and Reach level 10", false},
		{"Install and Register", false},
	}
	for _, c := range cases {
		if got := IsArbitrage(c.desc); got != c.want {
			t.Errorf("IsArbitrage(%q) = %v, want %v", c.desc, got, c.want)
		}
	}
}

func TestGrammarMatchesRuleClassifier(t *testing.T) {
	// The rule classifier must label generated descriptions with their
	// generating type: this is the consistency contract between the world
	// builder and the measurement pipeline.
	g := NewGrammar(randx.New(42))
	cls := RuleClassifier{}
	for i := 0; i < 2000; i++ {
		tp := Types[i%len(Types)]
		desc := g.Describe(tp, false)
		if got := cls.Classify(desc); got != tp {
			t.Fatalf("Classify(%q) = %v, want %v", desc, got, tp)
		}
	}
}

func TestGrammarArbitrageDetected(t *testing.T) {
	g := NewGrammar(randx.New(7))
	for i := 0; i < 200; i++ {
		desc := g.Describe(Usage, true)
		if !IsArbitrage(desc) {
			t.Fatalf("arbitrage description not detected: %q", desc)
		}
		// Arbitrage offers are activity offers.
		if got := (RuleClassifier{}).Classify(desc); !got.IsActivity() {
			t.Fatalf("arbitrage offer classified as %v: %q", got, desc)
		}
	}
}

func TestGrammarDeterminism(t *testing.T) {
	a := NewGrammar(randx.New(3))
	b := NewGrammar(randx.New(3))
	for i := 0; i < 100; i++ {
		tp := Types[i%len(Types)]
		if a.Describe(tp, false) != b.Describe(tp, false) {
			t.Fatal("grammar not deterministic")
		}
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Install and Reach level 10!")
	want := []string{"install", "and", "reach", "level", "<num>"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
	toks = Tokenize("spend $4.99 now")
	joined := strings.Join(toks, " ")
	if !strings.Contains(joined, "<dollar>") || !strings.Contains(joined, "<num>") {
		t.Errorf("dollar tokenization wrong: %v", toks)
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty string should yield no tokens")
	}
}

func TestBayesClassifierLearnsGrammar(t *testing.T) {
	g := NewGrammar(randx.New(11))
	nb := NewBayesClassifier()
	// Train on 400 generated descriptions.
	for i := 0; i < 400; i++ {
		tp := Types[i%len(Types)]
		nb.Train(g.Describe(tp, false), tp)
	}
	// Evaluate on a fresh stream.
	eval := NewGrammar(randx.New(12))
	var test []Offer
	for i := 0; i < 400; i++ {
		tp := Types[i%len(Types)]
		test = append(test, Offer{Description: eval.Describe(tp, false), Truth: tp})
	}
	acc := Accuracy(nb, test)
	if acc < 0.9 {
		t.Errorf("naive Bayes accuracy = %g, want >= 0.9", acc)
	}
	// The rule classifier is perfect on its own grammar.
	if ra := Accuracy(RuleClassifier{}, test); ra != 1.0 {
		t.Errorf("rule accuracy = %g, want 1.0", ra)
	}
}

func TestBayesUntrained(t *testing.T) {
	nb := NewBayesClassifier()
	if nb.Classify("Install and Register") != NoActivity {
		t.Error("untrained classifier should default to NoActivity")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(RuleClassifier{}, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}
