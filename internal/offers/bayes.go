package offers

import (
	"math"
	"strings"
)

// BayesClassifier is a multinomial naive-Bayes text classifier over offer
// descriptions. It is the ablation alternative to RuleClassifier: the
// paper labeled descriptions manually (rules), but a store operator
// deploying the methodology at scale would train a model on those labels;
// the ablation bench compares the two.
type BayesClassifier struct {
	classTok   map[Type]map[string]int // per-class token counts
	classTotal map[Type]int            // per-class total tokens
	classDocs  map[Type]int            // per-class document counts
	vocab      map[string]bool
	docs       int
}

// NewBayesClassifier returns an untrained classifier.
func NewBayesClassifier() *BayesClassifier {
	return &BayesClassifier{
		classTok:   map[Type]map[string]int{},
		classTotal: map[Type]int{},
		classDocs:  map[Type]int{},
		vocab:      map[string]bool{},
	}
}

// Train adds one labeled description.
func (b *BayesClassifier) Train(desc string, label Type) {
	toks := Tokenize(desc)
	m, ok := b.classTok[label]
	if !ok {
		m = map[string]int{}
		b.classTok[label] = m
	}
	for _, tok := range toks {
		m[tok]++
		b.classTotal[label]++
		b.vocab[tok] = true
	}
	b.classDocs[label]++
	b.docs++
}

// Classify implements Classifier: it returns the maximum-a-posteriori
// class with Laplace smoothing; an untrained classifier returns
// NoActivity.
func (b *BayesClassifier) Classify(desc string) Type {
	if b.docs == 0 {
		return NoActivity
	}
	toks := Tokenize(desc)
	best := NoActivity
	bestScore := math.Inf(-1)
	v := float64(len(b.vocab))
	for _, class := range Types {
		docs := b.classDocs[class]
		if docs == 0 {
			continue
		}
		score := math.Log(float64(docs) / float64(b.docs))
		total := float64(b.classTotal[class])
		for _, tok := range toks {
			count := float64(b.classTok[class][tok])
			score += math.Log((count + 1) / (total + v))
		}
		if score > bestScore {
			bestScore = score
			best = class
		}
	}
	return best
}

// Tokenize lowercases and splits a description into alphanumeric tokens;
// digit runs are replaced by a <num> placeholder so "reach level 10" and
// "reach level 7" share features.
func Tokenize(s string) []string {
	l := strings.ToLower(s)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		tok := cur.String()
		if isNumeric(tok) {
			tok = "<num>"
		}
		toks = append(toks, tok)
		cur.Reset()
	}
	for _, c := range l {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			cur.WriteRune(c)
		case c == '$':
			flush()
			toks = append(toks, "<dollar>")
		default:
			flush()
		}
	}
	flush()
	return toks
}

func isNumeric(s string) bool {
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Accuracy scores a classifier against labeled offers, returning the
// fraction classified to the ground-truth type.
func Accuracy(c Classifier, offers []Offer) float64 {
	if len(offers) == 0 {
		return 0
	}
	correct := 0
	for _, o := range offers {
		if c.Classify(o.Description) == o.Truth {
			correct++
		}
	}
	return float64(correct) / float64(len(offers))
}
