package offers_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/offers"
)

func ExampleRuleClassifier_Classify() {
	cls := offers.RuleClassifier{}
	for _, desc := range []string{
		"Install and Launch",
		"Install and Register",
		"Install and Reach level 10",
		"Install & Make any purchase",
	} {
		fmt.Printf("%-30q %v\n", desc, cls.Classify(desc))
	}
	// Output:
	// "Install and Launch"           No activity
	// "Install and Register"         Activity (Registration)
	// "Install and Reach level 10"   Activity (Usage)
	// "Install & Make any purchase"  Activity (Purchase)
}

func ExampleNormalizePayout() {
	// CashPirate pays 950 points per USD; an offer worth 57 points:
	fmt.Printf("$%.2f\n", offers.NormalizePayout(57, 950))
	// Output:
	// $0.06
}

func ExampleIsArbitrage() {
	fmt.Println(offers.IsArbitrage("Install and reach 850 points by completing tasks (watch videos, complete surveys)"))
	fmt.Println(offers.IsArbitrage("Install and Reach level 10"))
	// Output:
	// true
	// false
}

// Property: classification is total and stable — any string classifies
// without panicking and yields the same label twice.
func TestClassifyTotalProperty(t *testing.T) {
	cls := offers.RuleClassifier{}
	f := func(s string) bool {
		return cls.Classify(s) == cls.Classify(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: tokenization never produces empty tokens.
func TestTokenizeNoEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range offers.Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
