package offers

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/dates"
)

// The paper's authors publicly shared their crawled offer dataset
// (github.com/shehrozef/IncentInstalls); WriteCSV/ReadCSV provide the
// equivalent interchange format for datasets produced by the monitoring
// pipeline.

// csvHeader is the column layout of the interchange format.
var csvHeader = []string{
	"offer_id", "iip", "app_package", "description",
	"payout_usd", "first_seen", "last_seen", "countries",
}

// WriteCSV serializes offers in the interchange format. Ground-truth
// fields are intentionally not exported — the shared dataset carries only
// what the pipeline observed.
func WriteCSV(w io.Writer, offers []Offer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("offers: writing header: %w", err)
	}
	for _, o := range offers {
		rec := []string{
			o.ID,
			o.IIP,
			o.AppPackage,
			o.Description,
			strconv.FormatFloat(o.PayoutUSD, 'f', 4, 64),
			strconv.Itoa(int(o.FirstSeen)),
			strconv.Itoa(int(o.LastSeen)),
			strings.Join(o.Countries, ";"),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("offers: writing %s: %w", o.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) ([]Offer, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("offers: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("offers: header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("offers: column %d is %q, want %q", i, header[i], col)
		}
	}
	var out []Offer
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("offers: line %d: %w", line, err)
		}
		payout, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("offers: line %d: bad payout %q", line, rec[4])
		}
		first, err := strconv.Atoi(rec[5])
		if err != nil {
			return nil, fmt.Errorf("offers: line %d: bad first_seen %q", line, rec[5])
		}
		last, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("offers: line %d: bad last_seen %q", line, rec[6])
		}
		var countries []string
		if rec[7] != "" {
			countries = strings.Split(rec[7], ";")
		}
		out = append(out, Offer{
			ID:          rec[0],
			IIP:         rec[1],
			AppPackage:  rec[2],
			Description: rec[3],
			PayoutUSD:   payout,
			FirstSeen:   dates.Date(first),
			LastSeen:    dates.Date(last),
			Countries:   countries,
		})
	}
	return out, nil
}
