package offers

import "strings"

// Classifier labels offer descriptions. The default rule-based classifier
// encodes the paper's manual-labeling rubric (Section 4.1): an offer is
// Purchase if it requires spending money; else Usage if it requires "any
// other action" beyond install and registration (so "Install, register,
// and download a song" is a usage offer, as in the paper's TREBEL case
// study); else Registration if it only requires account creation; else
// NoActivity.
type Classifier interface {
	Classify(description string) Type
}

// RuleClassifier is the keyword-rule classifier used by the main pipeline.
type RuleClassifier struct{}

var purchaseKeywords = []string{
	"purchase", "buy", "spend $", "subscription", "in-app purchase",
	"make a $", "starter pack",
}

var registrationKeywords = []string{
	"register", "sign up", "signup", "create an account",
	"registration", "verify your account",
}

var usageKeywords = []string{
	"reach level", "play", "win", "watch", "use the app",
	"download a song", "finish", "levels", "tutorial", "minutes",
	"days", "points", "coins", "earn", "survey", "matches",
}

// Classify implements Classifier.
func (RuleClassifier) Classify(desc string) Type {
	l := strings.ToLower(desc)
	if containsAny(l, purchaseKeywords) {
		return Purchase
	}
	if containsAny(l, usageKeywords) {
		return Usage
	}
	if containsAny(l, registrationKeywords) {
		return Registration
	}
	return NoActivity
}

var arbitrageKeywords = []string{
	"survey", "watch videos", "completing tasks", "completing offers",
	"shop deals", "collect", "coins by completing", "points by completing",
}

// IsArbitrage reports whether a description matches the arbitrage pattern
// of Section 4.3.2: the required tasks (surveys, video watching, offer
// completion) are themselves revenue sources for the developer.
func IsArbitrage(desc string) bool {
	return containsAny(strings.ToLower(desc), arbitrageKeywords)
}

func containsAny(s string, keys []string) bool {
	for _, k := range keys {
		if strings.Contains(s, k) {
			return true
		}
	}
	return false
}
