// Package offers models incentivized install offers: the taxonomy from the
// paper's Section 2.2 (no-activity vs. activity, with the Section 4.1
// subcategories registration / purchase / usage), a deterministic
// description grammar used to populate offer walls, the rule-based
// description classifier replicating the authors' manual labeling rubric,
// an arbitrage-offer detector, and point-to-USD payout normalization.
package offers

import (
	"fmt"
	"strings"

	"repro/internal/dates"
)

// Type is the offer taxonomy. NoActivity requires only install+open;
// activity offers additionally require in-app tasks and subdivide by the
// engagement metric they target.
type Type int

const (
	// NoActivity: "Install and Launch" — manipulates install counts only.
	NoActivity Type = iota
	// Usage: any non-registration, non-purchase in-app task
	// ("Install and Reach Level 10") — manipulates session metrics.
	Usage
	// Registration: "Install and Register" — manipulates registered-user
	// counts.
	Registration
	// Purchase: "Install and make a $4.99 in-app purchase" — manipulates
	// revenue.
	Purchase
)

// Types lists all offer types in presentation order (matches Table 3).
var Types = []Type{NoActivity, Usage, Registration, Purchase}

func (t Type) String() string {
	switch t {
	case NoActivity:
		return "No activity"
	case Usage:
		return "Activity (Usage)"
	case Registration:
		return "Activity (Registration)"
	case Purchase:
		return "Activity (Purchase)"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// IsActivity reports whether the offer requires in-app tasks beyond
// install+open.
func (t Type) IsActivity() bool { return t != NoActivity }

// Offer is one incentivized install offer as assembled by the monitoring
// pipeline: the advertised app, the IIP that carries it, the user-facing
// description, and the payout normalized to USD.
type Offer struct {
	ID          string
	AppPackage  string
	IIP         string
	Description string
	PayoutUSD   float64
	// Truth is the generator's ground-truth label; the measurement
	// pipeline never reads it (it classifies Description instead), but
	// tests use it to score the classifier.
	Truth Type
	// TruthArbitrage marks ground-truth arbitrage offers.
	TruthArbitrage bool
	// FirstSeen/LastSeen bound the campaign window as observed by the
	// monitor.
	FirstSeen, LastSeen dates.Date
	// Countries where the offer was observed.
	Countries []string
}

// Window returns the observed campaign window.
func (o Offer) Window() dates.Range {
	return dates.Range{Start: o.FirstSeen, End: o.LastSeen}
}

// Key identifies an offer for deduplication across milking runs: the same
// (IIP, app, description) tuple seen from two countries is one offer.
func (o Offer) Key() string {
	return o.IIP + "|" + o.AppPackage + "|" + strings.ToLower(o.Description)
}

// NormalizePayout converts an affiliate app's reward points to USD given
// the app's redemption rate ("We normalize offer payouts of different
// affiliate apps by converting their points to equivalent dollar
// amounts"). A non-positive rate yields 0.
func NormalizePayout(points, pointsPerUSD float64) float64 {
	if pointsPerUSD <= 0 || points <= 0 {
		return 0
	}
	return points / pointsPerUSD
}
