package offers

import (
	"fmt"
	"strings"

	"repro/internal/randx"
)

// Grammar generates realistic offer descriptions for a given offer type.
// The phrasings are modeled on the examples quoted in the paper ("Install
// and Register", "Install and Reach level 10", "Install & Make any
// purchase", "Install, register, and download a song", …).
type Grammar struct {
	r *randx.Rand
}

// NewGrammar returns a description generator bound to an RNG.
func NewGrammar(r *randx.Rand) *Grammar {
	return &Grammar{r: r}
}

var noActivityTemplates = []string{
	"Install and Launch",
	"Install and Open",
	"Install and run the app",
	"Install & Open the application",
	"Free install - just open once",
	"Install and try",
}

var usageTemplates = []string{
	"Install and Reach level %d",
	"Install and complete %d levels",
	"Install, open and play for %d minutes",
	"Install and win %d matches",
	"Install and use the app for %d days",
	"Install and watch %d videos",
	"Install, register, and download a song",
	"Install and finish the tutorial",
	"Install and open the app 3 days in a row",
}

var registrationTemplates = []string{
	"Install and Register",
	"Install and create an account",
	"Install and sign up with email",
	"Install, register and verify your account",
	"Install and complete registration",
}

var purchaseTemplates = []string{
	"Install and make a $%.2f in-app purchase",
	"Install & Make any purchase",
	"Install and buy the starter pack ($%.2f)",
	"Install, register and purchase a subscription",
	"Install and spend $%.2f in the shop",
}

var arbitrageTemplates = []string{
	"Install and reach %d points by completing tasks (watch videos, complete surveys)",
	"Install and earn %d coins by completing offers inside the app",
	"Install, then complete surveys and shop deals to collect %d points",
}

// decorations are neutral marketing phrases appended to descriptions.
// They widen the unique-description space (the paper saw 1,128 unique
// descriptions across 2,126 offers) and are chosen to contain none of the
// classifier's keywords so they never perturb the offer-type label.
var decorations = []string{
	"",
	"",
	"",
	" - quick and simple",
	" (new users only)",
	" - limited time",
	" and claim the bonus",
	" (Android only)",
	" - instant credit",
	" for a top bonus",
}

// Describe produces a description for the given type. Arbitrage offers are
// a flavour of usage offers whose tasks are themselves monetizable by the
// developer (Section 4.3.2).
func (g *Grammar) Describe(t Type, arbitrage bool) string {
	var desc string
	switch {
	case arbitrage:
		tpl := randx.Choice(g.r, arbitrageTemplates)
		desc = fmt.Sprintf(tpl, g.r.IntBetween(300, 1200))
	case t == NoActivity:
		desc = randx.Choice(g.r, noActivityTemplates)
	case t == Registration:
		desc = randx.Choice(g.r, registrationTemplates)
	case t == Purchase:
		tpl := randx.Choice(g.r, purchaseTemplates)
		price := []float64{0.99, 1.99, 2.99, 4.99, 9.99}[g.r.IntN(5)]
		desc = sprintfMaybe(tpl, price)
	default:
		tpl := randx.Choice(g.r, usageTemplates)
		desc = sprintfMaybe(tpl, float64(g.r.IntBetween(2, 20)))
	}
	return desc + randx.Choice(g.r, decorations)
}

// sprintfMaybe applies the numeric argument only when the template expects
// one, so verb-less templates pass through unchanged.
func sprintfMaybe(tpl string, v float64) string {
	switch {
	case strings.Contains(tpl, "%d"):
		return fmt.Sprintf(tpl, int(v))
	case strings.Contains(tpl, "%.2f"):
		return fmt.Sprintf(tpl, v)
	default:
		return tpl
	}
}
