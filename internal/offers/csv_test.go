package offers

import (
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

func sampleOffers(n int) []Offer {
	g := NewGrammar(randx.New(5))
	out := make([]Offer, n)
	for i := range out {
		tp := Types[i%len(Types)]
		out[i] = Offer{
			ID:          string(rune('a'+i%26)) + "-offer",
			IIP:         "Fyber",
			AppPackage:  "com.app.x",
			Description: g.Describe(tp, false),
			PayoutUSD:   0.06 * float64(i+1),
			FirstSeen:   dates.StudyStart,
			LastSeen:    dates.StudyStart.AddDays(i),
			Countries:   []string{"USA", "Germany"},
		}
	}
	return out
}

func TestCSVRoundTrip(t *testing.T) {
	in := sampleOffers(8)
	var b strings.Builder
	if err := WriteCSV(&b, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(got), len(in))
	}
	for i := range in {
		a, b := in[i], got[i]
		if a.ID != b.ID || a.IIP != b.IIP || a.AppPackage != b.AppPackage ||
			a.Description != b.Description || a.FirstSeen != b.FirstSeen ||
			a.LastSeen != b.LastSeen {
			t.Errorf("offer %d mismatch: %+v vs %+v", i, a, b)
		}
		if diff := a.PayoutUSD - b.PayoutUSD; diff > 1e-4 || diff < -1e-4 {
			t.Errorf("offer %d payout %g vs %g", i, a.PayoutUSD, b.PayoutUSD)
		}
		if len(a.Countries) != len(b.Countries) {
			t.Errorf("offer %d countries %v vs %v", i, a.Countries, b.Countries)
		}
	}
}

func TestCSVCommasAndQuotesInDescriptions(t *testing.T) {
	in := []Offer{{
		ID: "x", IIP: "Fyber", AppPackage: "a.b",
		Description: `Install, register, and "win" big`,
	}}
	var b strings.Builder
	if err := WriteCSV(&b, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Description != in[0].Description {
		t.Errorf("description mangled: %q", got[0].Description)
	}
}

func TestCSVNoGroundTruthLeak(t *testing.T) {
	in := sampleOffers(4)
	in[0].Truth = Purchase
	in[0].TruthArbitrage = true
	var b strings.Builder
	if err := WriteCSV(&b, in); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(b.String(), "\n", 2)[0]
	if strings.Contains(header, "truth") || strings.Contains(header, "arbitrage") {
		t.Errorf("ground truth leaked into interchange format: %s", header)
	}
	got, _ := ReadCSV(strings.NewReader(b.String()))
	if got[0].Truth != NoActivity || got[0].TruthArbitrage {
		t.Error("truth fields should come back zero")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",      // no header
		"a,b\n", // wrong column count
		strings.Replace(validCSV(t), "offer_id", "offer_identifier", 1), // wrong column name
		strings.Replace(validCSV(t), "0.0600", "not-a-number", 1),       // bad payout
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func validCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := WriteCSV(&b, sampleOffers(1)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCSVEmptyDataset(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty dataset round trip: %v", got)
	}
}
