package honeyapp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newBackend(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, &Client{BaseURL: srv.URL}
}

func devInfo() DeviceInfo {
	return DeviceInfo{
		Build:         "samsung/SM-G960F/9/1234567",
		SSIDHash:      "ssid:abcdef0123456789",
		IPBlock:       "203.0.113.77",
		ASNName:       "carrier",
		InstalledApps: []string{"eu.gcashapp", "com.other.app"},
	}
}

func TestTruncateIPv4(t *testing.T) {
	cases := []struct{ in, want string }{
		{"203.0.113.77", "203.0.113"},
		{"10.1.2.3", "10.1.2"},
		{"203.0.113", "203.0.113"}, // already truncated
		{"not-an-ip", "not-an-ip"},
	}
	for _, c := range cases {
		if got := TruncateIPv4(c.in); got != c.want {
			t.Errorf("TruncateIPv4(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUploadAndCollect(t *testing.T) {
	s, c := newBackend(t)
	app := Install(c, "install-1", "Fyber", devInfo())
	if err := app.Open(0); err != nil {
		t.Fatal(err)
	}
	if err := app.ClickRecord(1); err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Kind != KindOpen || events[1].Kind != KindRecordClick {
		t.Errorf("kinds = %s, %s", events[0].Kind, events[1].Kind)
	}
	if events[0].IIP != "Fyber" || events[0].InstallID != "install-1" {
		t.Errorf("attribution wrong: %+v", events[0])
	}
}

func TestPrivacyTransformApplied(t *testing.T) {
	s, c := newBackend(t)
	app := Install(c, "i1", "RankApp", devInfo())
	if err := app.Open(0); err != nil {
		t.Fatal(err)
	}
	ev := s.Events()[0]
	if ev.Device.IPBlock != "203.0.113" {
		t.Errorf("IP not truncated: %q", ev.Device.IPBlock)
	}
	if !strings.HasPrefix(ev.Device.SSIDHash, "ssid:") {
		t.Errorf("SSID not hashed: %q", ev.Device.SSIDHash)
	}
}

func TestServerSideTruncationDefense(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	// A buggy/malicious client posts a full IP directly.
	body := `{"install_id":"x","kind":"open","device":{"ip_block":"198.51.100.42"}}`
	resp, err := http.Post(srv.URL+"/v1/telemetry", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.Events()[0].Device.IPBlock; got != "198.51.100" {
		t.Errorf("server stored full IP: %q", got)
	}
}

func TestUploadValidation(t *testing.T) {
	_, c := newBackend(t)
	err := c.Upload(Event{InstallID: "", Kind: KindOpen})
	if err == nil {
		t.Error("missing install ID should be rejected")
	}
	err = c.Upload(Event{InstallID: "x", Kind: "weird"})
	if err == nil {
		t.Error("unknown kind should be rejected")
	}
}

func TestBadJSONRejected(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/telemetry", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	if s.NumEvents() != 0 {
		t.Error("bad event stored")
	}
}

func TestUploadConnectionError(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"}
	if err := c.Upload(Event{InstallID: "x", Kind: KindOpen}); err == nil {
		t.Error("unreachable backend should error")
	}
}

func TestNoHardwareIdentifierFields(t *testing.T) {
	// The ethics section promises no IMEI/IMSI collection; the schema
	// must not even have such fields. Guard via JSON round trip.
	ev := Event{InstallID: "x", Kind: KindOpen, Device: devInfo()}
	b, err := jsonMarshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"imei", "imsi", "serial"} {
		if strings.Contains(strings.ToLower(string(b)), banned) {
			t.Errorf("telemetry leaks %s", banned)
		}
	}
}

func jsonMarshal(ev Event) ([]byte, error) {
	return json.Marshal(ev)
}
