// Package honeyapp implements the paper's purpose-built "voice memos"
// honey app and its telemetry backend: an instrumented app client that
// reports opens and record-button clicks together with device metadata,
// applying the ethics section's privacy transforms (hashed SSID, truncated
// IPv4, no hardware identifiers), and an HTTP collection server that
// stores the uploads for the Section 3 analyses.
package honeyapp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Event kinds uploaded by the honey app. Telemetry is sent whenever the
// user opens the app or clicks the voice-memo record button.
const (
	KindOpen        = "open"
	KindRecordClick = "record_click"
)

// DeviceInfo is the device metadata attached to every upload. Fields
// mirror what the paper collects: build fingerprint, root and emulator
// signals, hashed WiFi SSID, the /24 of the public IPv4, ASN, and the list
// of installed packages. There is deliberately no IMEI/IMSI field.
type DeviceInfo struct {
	Build         string   `json:"build"`
	Rooted        bool     `json:"rooted"`
	Emulator      bool     `json:"emulator"`
	SSIDHash      string   `json:"ssid_hash"`
	IPBlock       string   `json:"ip_block"` // first three octets only
	ASNName       string   `json:"asn_name"`
	CloudASN      bool     `json:"cloud_asn"`
	InstalledApps []string `json:"installed_apps"`
}

// Event is one telemetry upload.
type Event struct {
	InstallID string `json:"install_id"`
	Kind      string `json:"kind"`
	// HourOffset is hours since the install campaign began; the honey
	// experiment uses it to measure delivery speed and retention.
	HourOffset int        `json:"hour_offset"`
	IIP        string     `json:"iip"` // attribution tag of the campaign
	Device     DeviceInfo `json:"device"`
}

// TruncateIPv4 drops the last octet of a dotted-quad address, implementing
// the paper's "we drop the last octet of the IPv4 address".
func TruncateIPv4(ip string) string {
	parts := strings.Split(ip, ".")
	if len(parts) != 4 {
		return ip
	}
	return strings.Join(parts[:3], ".")
}

// Server is the telemetry collection backend.
type Server struct {
	mu     sync.RWMutex
	events []Event
}

// NewServer returns an empty collection server.
func NewServer() *Server { return &Server{} }

// Handler returns the HTTP handler (POST /v1/telemetry).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/telemetry", s.handleUpload)
	return mux
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var ev Event
	if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
		http.Error(w, "bad event", http.StatusBadRequest)
		return
	}
	if ev.InstallID == "" || (ev.Kind != KindOpen && ev.Kind != KindRecordClick) {
		http.Error(w, "invalid event", http.StatusBadRequest)
		return
	}
	// Server-side defense in depth: never store a full IPv4 even if a
	// buggy client sends one.
	ev.Device.IPBlock = TruncateIPv4(ev.Device.IPBlock)
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// Events returns a copy of all stored events.
func (s *Server) Events() []Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Event(nil), s.events...)
}

// NumEvents returns the stored event count.
func (s *Server) NumEvents() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.events)
}

// Client uploads telemetry to the collection server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// Upload posts one event; the client applies the IP truncation before the
// event leaves the device.
func (c *Client) Upload(ev Event) error {
	ev.Device.IPBlock = TruncateIPv4(ev.Device.IPBlock)
	body, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("honeyapp: encoding event: %w", err)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Post(c.BaseURL+"/v1/telemetry", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("honeyapp: uploading event: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("honeyapp: upload rejected: status %d", resp.StatusCode)
	}
	return nil
}

// App is one installed instance of the honey app on a device. Its only
// functionality is the voice-memo record button; telemetry fires on every
// open and record click.
type App struct {
	InstallID string
	IIP       string
	Device    DeviceInfo
	client    *Client
}

// Install instantiates the app on a device.
func Install(client *Client, installID, iipName string, dev DeviceInfo) *App {
	return &App{InstallID: installID, IIP: iipName, Device: dev, client: client}
}

// Open reports an app open at the given hour offset.
func (a *App) Open(hour int) error {
	return a.client.Upload(Event{
		InstallID: a.InstallID, Kind: KindOpen, HourOffset: hour,
		IIP: a.IIP, Device: a.Device,
	})
}

// ClickRecord reports a record-button click at the given hour offset.
func (a *App) ClickRecord(hour int) error {
	return a.client.Upload(Event{
		InstallID: a.InstallID, Kind: KindRecordClick, HourOffset: hour,
		IIP: a.IIP, Device: a.Device,
	})
}
