package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzSpecJSONRoundTrip asserts the canonical-encoding property sweeps
// and config files rely on: for any JSON a Spec accepts, encode→decode→
// encode is byte-identical — the first marshal is already the canonical
// form, so specs never drift through tooling round trips.
func FuzzSpecJSONRoundTrip(f *testing.F) {
	for _, s := range Builtins() {
		raw, err := s.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"name":"x","world":{"base":"scale","seed":9},"adversary":{"kind":"jitter","jitter_max_days":3},"detector":{"day_bucket":1}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // not a spec; nothing to round-trip
		}
		first, err := s.Encode()
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		s2, err := Decode(first)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\n%s", err, first)
		}
		second, err := s2.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("encode→decode→encode not byte-identical:\n first: %s\nsecond: %s", first, second)
		}
		// The struct must also survive structurally, not just textually.
		if s != s2 {
			t.Fatalf("spec changed through round trip: %+v vs %+v", s, s2)
		}
	})
}

// TestBuiltinSpecsCanonical pins every built-in to the round-trip
// property directly (the fuzz seeds, run as a plain test).
func TestBuiltinSpecsCanonical(t *testing.T) {
	for _, s := range Builtins() {
		raw, err := s.Encode()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		var s2 Spec
		if err := json.Unmarshal(raw, &s2); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if s != s2 {
			t.Fatalf("%s: not JSON round-trippable: %+v vs %+v", s.Name, s, s2)
		}
	}
}
