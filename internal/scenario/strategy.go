package scenario

import (
	"fmt"
	"strconv"

	"repro/internal/binenc"
	"repro/internal/dates"
	"repro/internal/randx"
)

// Strategy shapes one campaign unit's delivery behaviour: how many
// completions it claims each day, which pool workers fulfil them, what
// device identity those workers present to the store, and whether they
// fake post-install retention. The engine instantiates one Strategy per
// campaign unit (NewStrategy), so implementations may carry per-unit
// state; they must draw randomness only from the *randx.Rand they are
// handed (the unit's own stream) or from pure functions of
// (seed, unit, day) — never from shared state — which is what keeps every
// scenario bit-identical across worker counts.
//
// The baseline strategy consumes the random stream exactly as the
// pre-scenario engine did, which is what pins `paper-baseline` to the
// PR-1/PR-2 goldens without regeneration.
type Strategy interface {
	// Quota returns how many completions the unit attempts on day, given
	// the expected daily demand and the platform's daily pace cap. The
	// engine additionally caps the result by the campaign's remaining
	// purchased completions.
	Quota(r *randx.Rand, day dates.Date, uptake float64, pace int) int

	// PickWorker selects the pool index fulfilling one completion.
	PickWorker(r *randx.Rand, day dates.Date, poolSize int) int

	// DeviceID maps a worker's stable ID to the device identity visible
	// to the store on this day (device-churn rotates it; everyone else
	// returns stable unchanged).
	DeviceID(stable string, day dates.Date) string

	// Retention reports extra faked retention sessions to record on the
	// advertised app after a day's deliveries (organic-mimic). It is
	// called only on days the unit delivered at least one completion;
	// delivered is that day's count. A zero session count means none.
	Retention(r *randx.Rand, day dates.Date, delivered int) (sessions, secPerSession int64)

	// MarshalState captures the strategy's internal schedule state for
	// checkpoint/resume; stateless strategies return nil. UnmarshalState
	// restores a captured state.
	MarshalState() []byte
	UnmarshalState(data []byte) error
}

// NewStrategy builds the per-unit strategy a spec selects. seed is the
// world seed and unit a stable unit label (the campaign's offer ID);
// strategies needing schedule randomness beyond the unit's stream derive
// it purely from (seed, unit, epoch) so resumed runs recompute it
// identically.
func NewStrategy(a AdversarySpec, seed uint64, unit string) (Strategy, error) {
	switch a.Kind {
	case "", KindBaseline:
		return baseline{}, nil
	case KindJitter:
		max := a.JitterMaxDays
		if max <= 0 {
			max = 4
		}
		return &jitter{max: max, ring: make([]int, max+1)}, nil
	case KindSybilSplit:
		groups := a.SybilGroups
		if groups <= 1 {
			groups = 4
		}
		rotate := a.SybilRotateDays
		if rotate <= 0 {
			rotate = 7
		}
		return &sybil{seed: seed, unit: unit, salt: randx.Hash64(unit),
			groups: groups, rotate: rotate}, nil
	case KindDeviceChurn:
		every := a.ChurnEveryDays
		if every <= 0 {
			every = 7
		}
		return &churn{every: every}, nil
	case KindSlowDrip:
		factor := a.DripFactor
		if factor <= 0 || factor >= 1 {
			factor = 0.35
		}
		return &drip{factor: factor}, nil
	case KindBurst:
		every := a.BurstEveryDays
		if every <= 0 {
			every = 8
		}
		return &burst{every: every, phase: int(randx.Hash64(unit) % uint64(every))}, nil
	case KindOrganicMimic:
		prob := a.MimicReturnProb
		if prob <= 0 || prob > 1 {
			prob = 0.45
		}
		decay := a.MimicDecay
		if decay <= 0 || decay >= 1 {
			decay = 0.8
		}
		return &mimic{prob: prob, decay: decay}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown adversary kind %q", a.Kind)
	}
}

// baseline is the paper's observed behaviour: Poisson demand capped by
// the platform pace, uniform worker picks, stable device identities, no
// faked retention. Its draw sequence is exactly the pre-scenario
// engine's, which the equivalence goldens pin.
type baseline struct{}

func (baseline) Quota(r *randx.Rand, _ dates.Date, uptake float64, pace int) int {
	n := r.Poisson(uptake)
	if n > pace {
		n = pace
	}
	return n
}

func (baseline) PickWorker(r *randx.Rand, _ dates.Date, poolSize int) int {
	return r.IntN(poolSize)
}

func (baseline) DeviceID(stable string, _ dates.Date) string { return stable }

func (baseline) Retention(*randx.Rand, dates.Date, int) (int64, int64) { return 0, 0 }

func (baseline) MarshalState() []byte { return nil }

func (baseline) UnmarshalState(data []byte) error {
	if len(data) > 0 {
		return fmt.Errorf("scenario: stateless strategy given %d state bytes", len(data))
	}
	return nil
}

// jitter defers each claimed completion by a personal uniform 0..max day
// delay, smearing a campaign's installs across detector day buckets. The
// pending schedule is a day ring owned by the unit.
type jitter struct {
	baseline
	max    int
	ring   []int // pending completions, ring[head] = next
	head   int
	next   dates.Date // the day ring[head] belongs to
	primed bool
}

func (j *jitter) Quota(r *randx.Rand, day dates.Date, uptake float64, pace int) int {
	if !j.primed {
		j.next, j.primed = day, true
	}
	for j.next < day { // gaps outside the campaign window drop their slot
		j.ring[j.head] = 0
		j.head = (j.head + 1) % len(j.ring)
		j.next++
	}
	n := r.Poisson(uptake)
	for i := 0; i < n; i++ {
		d := r.IntN(j.max + 1)
		j.ring[(j.head+d)%len(j.ring)]++
	}
	q := j.ring[j.head]
	j.ring[j.head] = 0
	j.head = (j.head + 1) % len(j.ring)
	j.next = day + 1
	if q > pace {
		q = pace // overflow beyond the platform pace is dropped
	}
	return q
}

func (j *jitter) MarshalState() []byte {
	var e binenc.Enc
	e.Bool(j.primed)
	e.Varint(int64(j.next))
	e.Uvarint(uint64(len(j.ring)))
	for i := range j.ring {
		e.Uvarint(uint64(j.ring[(j.head+i)%len(j.ring)]))
	}
	return e.Bytes()
}

func (j *jitter) UnmarshalState(data []byte) error {
	dec := binenc.NewDec(data)
	j.primed = dec.Bool()
	j.next = dates.Date(dec.Varint())
	n := int(dec.Uvarint())
	if dec.Err() == nil && n != len(j.ring) {
		return fmt.Errorf("scenario: jitter state ring size %d, want %d", n, len(j.ring))
	}
	j.head = 0
	for i := 0; i < n && dec.Err() == nil; i++ {
		j.ring[i] = int(dec.Uvarint())
	}
	if err := dec.Done(); err != nil {
		return fmt.Errorf("scenario: jitter state: %w", err)
	}
	return nil
}

// sybil partitions the pool into `groups` slices reshuffled every
// `rotate` days; each campaign draws workers only from its own rotating
// slice, so any fixed device pair fulfils few campaigns together and
// rarely accumulates MinCommonApps shared synchronized installs. The
// per-epoch permutation is a pure function of (seed, unit, epoch, pool),
// so the cache needs no checkpoint state.
type sybil struct {
	baseline
	seed           uint64
	unit           string
	salt           uint64
	groups, rotate int

	epoch int
	poolN int
	perm  []int
}

func (s *sybil) PickWorker(r *randx.Rand, day dates.Date, poolSize int) int {
	e := int(day) / s.rotate
	if s.perm == nil || e != s.epoch || poolSize != s.poolN {
		pr := randx.Derive(s.seed, "sybil/"+s.unit+"/"+strconv.Itoa(e)+"/"+strconv.Itoa(poolSize))
		s.perm, s.epoch, s.poolN = pr.Perm(poolSize), e, poolSize
	}
	slot := int((s.salt + uint64(e)) % uint64(s.groups))
	lo, hi := slot*poolSize/s.groups, (slot+1)*poolSize/s.groups
	if hi-lo < 1 {
		return r.IntN(poolSize)
	}
	return s.perm[lo+r.IntN(hi-lo)]
}

// churn rotates the device identity each worker presents to the store
// every `every` days, so no single identity accumulates enough
// synchronized installs to link.
type churn struct {
	baseline
	every int
}

func (c *churn) DeviceID(stable string, day dates.Date) string {
	return stable + "~" + strconv.Itoa(int(day)/c.every)
}

// drip scales daily demand down, stretching delivery thin across the
// window (the slow pacing extreme).
type drip struct {
	baseline
	factor float64
}

func (d *drip) Quota(r *randx.Rand, day dates.Date, uptake float64, pace int) int {
	return d.baseline.Quota(r, day, uptake*d.factor, pace)
}

// burst accumulates demand silently and delivers it in one burst every
// `every` days (staggered per campaign by phase), the fast pacing
// extreme: whole-pool co-installs land in a single day bucket.
type burst struct {
	baseline
	every  int
	phase  int
	latent int
}

func (b *burst) Quota(r *randx.Rand, day dates.Date, uptake float64, pace int) int {
	b.latent += r.Poisson(uptake)
	if int(day)%b.every != b.phase {
		return 0
	}
	q := b.latent
	if q > pace {
		q = pace
	}
	b.latent -= q
	return q
}

func (b *burst) MarshalState() []byte {
	var e binenc.Enc
	e.Uvarint(uint64(b.latent))
	return e.Bytes()
}

func (b *burst) UnmarshalState(data []byte) error {
	dec := binenc.NewDec(data)
	b.latent = int(dec.Uvarint())
	if err := dec.Done(); err != nil {
		return fmt.Errorf("scenario: burst state: %w", err)
	}
	return nil
}

// mimic fakes retention: each delivery day the unit also records
// sessions from a decaying cohort of past installers, so purchased
// engagement resembles organic day-after usage instead of the
// install-and-vanish signature the honey app measured.
type mimic struct {
	baseline
	prob  float64
	decay float64
	pool  float64 // faked retained cohort, decayed per delivery day
}

func (m *mimic) Retention(r *randx.Rand, _ dates.Date, delivered int) (int64, int64) {
	m.pool = m.pool*m.decay + float64(delivered)
	n := r.Poisson(m.pool * m.prob)
	if n <= 0 {
		return 0, 0
	}
	return int64(n), int64(60 + r.IntN(180))
}

func (m *mimic) MarshalState() []byte {
	var e binenc.Enc
	e.F64(m.pool)
	return e.Bytes()
}

func (m *mimic) UnmarshalState(data []byte) error {
	dec := binenc.NewDec(data)
	m.pool = dec.F64()
	if err := dec.Done(); err != nil {
		return fmt.Errorf("scenario: mimic state: %w", err)
	}
	return nil
}
