package scenario

import (
	"testing"

	"repro/internal/dates"
	"repro/internal/randx"
)

const testPace = 1 << 20

// TestBaselineMatchesLegacyDraws pins the baseline strategy to the exact
// draw sequence the pre-scenario engine used: Poisson(uptake) then the
// pace cap for the quota, IntN(pool) for worker picks, identity device
// IDs, and zero retention without consuming randomness.
func TestBaselineMatchesLegacyDraws(t *testing.T) {
	s, err := NewStrategy(AdversarySpec{}, 1, "offer-1")
	if err != nil {
		t.Fatal(err)
	}
	a := randx.Derive(7, "x")
	b := randx.Derive(7, "x")
	day := dates.Date(100)
	for i := 0; i < 50; i++ {
		want := b.Poisson(3.5)
		if want > 10 {
			want = 10
		}
		if got := s.Quota(a, day, 3.5, 10); got != want {
			t.Fatalf("quota draw %d: %d, want %d", i, got, want)
		}
		if got, want := s.PickWorker(a, day, 600), b.IntN(600); got != want {
			t.Fatalf("worker draw %d: %d, want %d", i, got, want)
		}
		if rs, _ := s.Retention(a, day, 5); rs != 0 {
			t.Fatal("baseline faked retention")
		}
		if got := s.DeviceID("w-1", day); got != "w-1" {
			t.Fatalf("baseline rotated device ID to %q", got)
		}
		day++
	}
	// Retention and DeviceID must not have consumed randomness: streams
	// still in lockstep.
	if a.IntN(1<<20) != b.IntN(1<<20) {
		t.Fatal("baseline strategy consumed extra randomness")
	}
	if s.MarshalState() != nil {
		t.Fatal("baseline is stateful")
	}
}

// TestJitterConservesCompletions runs jitter over a window and checks
// deliveries equal claims minus what is still pending or beyond pace —
// the smear moves installs across days, it does not invent them.
func TestJitterConservesCompletions(t *testing.T) {
	s, err := NewStrategy(AdversarySpec{Kind: KindJitter, JitterMaxDays: 3}, 1, "o")
	if err != nil {
		t.Fatal(err)
	}
	r := randx.Derive(1, "jitter-test")
	total := 0
	for day := dates.Date(0); day < 60; day++ {
		q := s.Quota(r, day, 4, testPace)
		if q < 0 {
			t.Fatalf("negative quota %d", q)
		}
		total += q
	}
	// With mean 4/day over 60 days and a <=3 day tail, delivered volume
	// must be close to demand (only the final ring can be pending).
	if total < 60*4/2 {
		t.Fatalf("jitter lost completions: delivered %d of ~240", total)
	}
}

// TestJitterStateRoundTrip checkpoints the pending ring mid-window and
// verifies the restored strategy continues the identical schedule.
func TestJitterStateRoundTrip(t *testing.T) {
	mk := func() Strategy {
		s, err := NewStrategy(AdversarySpec{Kind: KindJitter, JitterMaxDays: 4}, 1, "o")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk()
	r1 := randx.Derive(9, "s")
	for day := dates.Date(0); day < 10; day++ {
		a.Quota(r1, day, 5, testPace)
	}
	state := a.MarshalState()
	if state == nil {
		t.Fatal("jitter returned no state")
	}
	b := mk()
	if err := b.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	r2state, err := r1.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	r2 := randx.Derive(9, "s")
	if err := r2.UnmarshalState(r2state); err != nil {
		t.Fatal(err)
	}
	for day := dates.Date(10); day < 25; day++ {
		if qa, qb := a.Quota(r1, day, 5, testPace), b.Quota(r2, day, 5, testPace); qa != qb {
			t.Fatalf("day %d: restored jitter quota %d, want %d", day, qb, qa)
		}
	}
}

// TestSybilRestrictsAndRotates: picks stay inside one slice of the pool
// per epoch, and the slice changes across epochs.
func TestSybilRestrictsAndRotates(t *testing.T) {
	s, err := NewStrategy(AdversarySpec{Kind: KindSybilSplit, SybilGroups: 4, SybilRotateDays: 7}, 3, "offer-9")
	if err != nil {
		t.Fatal(err)
	}
	r := randx.Derive(3, "sybil-test")
	const pool = 400
	pickSet := func(day dates.Date) map[int]bool {
		set := map[int]bool{}
		for i := 0; i < 500; i++ {
			wi := s.PickWorker(r, day, pool)
			if wi < 0 || wi >= pool {
				t.Fatalf("pick %d out of pool", wi)
			}
			set[wi] = true
		}
		return set
	}
	e0 := pickSet(0)
	if len(e0) > pool/4 {
		t.Fatalf("epoch 0 drew %d distinct workers, want <= %d (one slice)", len(e0), pool/4)
	}
	e1 := pickSet(7)
	overlap := 0
	for wi := range e1 {
		if e0[wi] {
			overlap++
		}
	}
	// Independent reshuffled slices overlap ~1/4; identical slices would
	// overlap fully.
	if overlap == len(e1) {
		t.Fatal("sybil slice did not rotate across epochs")
	}
	// Same epoch, fresh draws: the slice must be stable (pure function of
	// (seed, unit, epoch, pool)).
	again := pickSet(3)
	for wi := range again {
		if !e0[wi] {
			t.Fatalf("epoch-0 slice unstable: worker %d appeared late", wi)
		}
	}
}

// TestChurnRotatesIdentities pins the rotation cadence.
func TestChurnRotatesIdentities(t *testing.T) {
	s, err := NewStrategy(AdversarySpec{Kind: KindDeviceChurn, ChurnEveryDays: 7}, 1, "o")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := s.DeviceID("w", 0), s.DeviceID("w", 6); a != b {
		t.Fatalf("identity rotated inside an epoch: %q vs %q", a, b)
	}
	if a, b := s.DeviceID("w", 6), s.DeviceID("w", 7); a == b {
		t.Fatalf("identity did not rotate across epochs: %q", a)
	}
	if a, b := s.DeviceID("w1", 3), s.DeviceID("w2", 3); a == b {
		t.Fatal("distinct workers share an identity")
	}
}

// TestBurstAccumulatesAndCaps: zero on off-days, accumulated demand on
// burst days, never above pace, nothing lost to the cap.
func TestBurstAccumulatesAndCaps(t *testing.T) {
	s, err := NewStrategy(AdversarySpec{Kind: KindBurst, BurstEveryDays: 5}, 1, "offer-3")
	if err != nil {
		t.Fatal(err)
	}
	r := randx.Derive(4, "burst-test")
	total, bursts := 0, 0
	for day := dates.Date(0); day < 50; day++ {
		q := s.Quota(r, day, 6, 40)
		if q > 40 {
			t.Fatalf("burst exceeded pace: %d", q)
		}
		if q > 0 {
			bursts++
		}
		total += q
	}
	if bursts > 11 {
		t.Fatalf("burst delivered on %d days, want ~10", bursts)
	}
	if total < 100 {
		t.Fatalf("burst delivered only %d completions", total)
	}
}

// TestMimicFadesRetention: sessions on delivery days, decaying with the
// cohort.
func TestMimicFadesRetention(t *testing.T) {
	s, err := NewStrategy(AdversarySpec{Kind: KindOrganicMimic, MimicReturnProb: 0.5, MimicDecay: 0.5}, 1, "o")
	if err != nil {
		t.Fatal(err)
	}
	r := randx.Derive(5, "mimic-test")
	first, _ := s.Retention(r, 0, 400)
	if first == 0 {
		t.Fatal("mimic faked no retention after 400 deliveries")
	}
	var last int64
	for day := dates.Date(1); day < 12; day++ {
		last, _ = s.Retention(r, day, 0)
	}
	if last >= first {
		t.Fatalf("mimic retention did not fade: day0=%d day11=%d", first, last)
	}
}

// TestNewStrategyRejectsUnknownKind guards the config surface.
func TestNewStrategyRejectsUnknownKind(t *testing.T) {
	if _, err := NewStrategy(AdversarySpec{Kind: "quantum"}, 1, "o"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := (Spec{Name: "x", Adversary: AdversarySpec{Kind: "quantum"}}).Validate(); err == nil {
		t.Fatal("Validate accepted unknown kind")
	}
}

// TestRegistry pins the registry surface: built-ins resolvable, baseline
// first, duplicates rejected.
func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("only %d scenarios registered", len(names))
	}
	if names[0] != "paper-baseline" {
		t.Fatalf("first scenario is %s, want paper-baseline", names[0])
	}
	for _, name := range names {
		sp, ok := Lookup(name)
		if !ok {
			t.Fatalf("registered %s not resolvable", name)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
	if err := Register(Spec{Name: "paper-baseline"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}
