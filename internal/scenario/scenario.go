// Package scenario is the declarative layer over world construction: a
// JSON-round-trippable Spec couples a world shape (which base config, how
// big, which seed) with a per-campaign adversary strategy and the
// detector knobs used to evaluate it. The paper observed exactly one
// world — the March–June 2019 ecosystem — and its Section 5.2 open
// question is whether install-time lockstep detection survives
// adversaries that adapt; the registry's named scenarios make that
// question executable: `paper-baseline` reproduces the observed world
// bit-for-bit, and each adversarial variant perturbs one axis of worker
// or campaign behaviour while preserving the engine's determinism
// contract (every strategy draws only from streams its own work unit
// owns, so results stay bit-identical across worker counts).
//
// The package deliberately does not import internal/sim: sim consumes
// scenario (Config carries an AdversarySpec, the engine instantiates one
// Strategy per campaign unit), and sim.ConfigForSpec materializes a Spec
// into a runnable config.
package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/lockstep"
)

// Base world names a Spec may reference. sim.ConfigForSpec maps them to
// TinyConfig / DefaultConfig / ScaleConfig / MassiveConfig.
const (
	BaseTiny    = "tiny"
	BaseDefault = "default"
	BaseScale   = "scale"
	BaseMassive = "massive"
)

// Spec is one fully described scenario. The zero value of every field
// means "inherit the base": a Spec{Name: "x"} is the paper's world.
//
// Spec is JSON-round-trippable with a canonical encoding: marshal →
// unmarshal → marshal is byte-identical (asserted by a fuzz test), so
// specs can live in files, flags, and reports without drift.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	World     WorldSpec     `json:"world"`
	Adversary AdversarySpec `json:"adversary"`
	Detector  DetectorSpec  `json:"detector"`
}

// WorldSpec overrides the base config's world shape. Zero fields inherit
// the base value.
type WorldSpec struct {
	// Base selects the starting config: tiny, default, or scale
	// ("" = tiny, the test-sized world).
	Base string `json:"base,omitempty"`
	// Seed overrides the base seed (0 = keep).
	Seed uint64 `json:"seed,omitempty"`
	// WindowDays shortens or lengthens the monitored window.
	WindowDays int `json:"window_days,omitempty"`
	// BaselineApps / BackgroundApps / WorkerPoolSize / ChartSize override
	// the corresponding Config fields.
	BaselineApps   int `json:"baseline_apps,omitempty"`
	BackgroundApps int `json:"background_apps,omitempty"`
	WorkerPoolSize int `json:"worker_pool_size,omitempty"`
	ChartSize      int `json:"chart_size,omitempty"`
	// Apps / Devices are the free world-size parameters (sim's
	// Config.Resize): the total catalog size and the total crowd-worker
	// device count across all IIP pools. They apply after the per-field
	// overrides above, so a spec may pin the baseline count and still
	// size the whole catalog with Apps.
	Apps    int `json:"apps,omitempty"`
	Devices int `json:"devices,omitempty"`
}

// Adversary strategy kinds. The empty kind is the baseline.
const (
	KindBaseline     = "baseline"
	KindJitter       = "jitter"
	KindSybilSplit   = "sybil-split"
	KindDeviceChurn  = "device-churn"
	KindSlowDrip     = "slow-drip"
	KindBurst        = "burst"
	KindOrganicMimic = "organic-mimic"
)

// Kinds lists every strategy kind, baseline first.
func Kinds() []string {
	return []string{KindBaseline, KindJitter, KindSybilSplit,
		KindDeviceChurn, KindSlowDrip, KindBurst, KindOrganicMimic}
}

// AdversarySpec selects and parameterizes the worker-pool behaviour of
// every campaign unit. Zero parameter values take the kind's default.
type AdversarySpec struct {
	// Kind names the strategy ("" = baseline, the paper's observed
	// behaviour).
	Kind string `json:"kind,omitempty"`

	// JitterMaxDays (jitter): each claimed completion is installed after
	// a uniform 0..N day personal delay, smearing a campaign's installs
	// across day buckets.
	JitterMaxDays int `json:"jitter_max_days,omitempty"`

	// SybilGroups / SybilRotateDays (sybil-split): each campaign draws
	// its workers from one of SybilGroups reshuffled pool slices,
	// rotating slice every SybilRotateDays, so a given device pair
	// co-works on few campaigns.
	SybilGroups     int `json:"sybil_groups,omitempty"`
	SybilRotateDays int `json:"sybil_rotate_days,omitempty"`

	// ChurnEveryDays (device-churn): the device identity a worker
	// presents to the store rotates every N days, so no single identity
	// accumulates enough synchronized installs to link.
	ChurnEveryDays int `json:"churn_every_days,omitempty"`

	// DripFactor (slow-drip): daily demand is scaled down by this factor
	// (< 1), stretching delivery thin across the window.
	DripFactor float64 `json:"drip_factor,omitempty"`

	// BurstEveryDays (burst): demand accumulates silently and is
	// delivered in one burst every N days (staggered per campaign), the
	// opposite pacing extreme.
	BurstEveryDays int `json:"burst_every_days,omitempty"`

	// MimicReturnProb / MimicDecay (organic-mimic): workers fake
	// retention — each delivery day the unit also records sessions from a
	// decaying cohort of "returning" past installers, making purchased
	// engagement look organic.
	MimicReturnProb float64 `json:"mimic_return_prob,omitempty"`
	MimicDecay      float64 `json:"mimic_decay,omitempty"`
}

// DetectorSpec overrides the lockstep detector configuration used to
// evaluate the scenario. Zero fields take lockstep.DefaultConfig values.
type DetectorSpec struct {
	DayBucket           int `json:"day_bucket,omitempty"`
	MinCommonApps       int `json:"min_common_apps,omitempty"`
	MinGroupSize        int `json:"min_group_size,omitempty"`
	MaxBucketPopulation int `json:"max_bucket_population,omitempty"`
}

// Config materializes the detector knobs over the defaults.
func (d DetectorSpec) Config() lockstep.Config {
	cfg := lockstep.DefaultConfig()
	if d.DayBucket > 0 {
		cfg.DayBucket = d.DayBucket
	}
	if d.MinCommonApps > 0 {
		cfg.MinCommonApps = d.MinCommonApps
	}
	if d.MinGroupSize > 0 {
		cfg.MinGroupSize = d.MinGroupSize
	}
	if d.MaxBucketPopulation > 0 {
		cfg.MaxBucketPopulation = d.MaxBucketPopulation
	}
	return cfg
}

// Validate checks the spec is materializable: a known base, a known
// adversary kind, and non-negative knobs.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec has no name")
	}
	switch s.World.Base {
	case "", BaseTiny, BaseDefault, BaseScale, BaseMassive:
	default:
		return fmt.Errorf("scenario %s: unknown base world %q", s.Name, s.World.Base)
	}
	if _, err := NewStrategy(s.Adversary, 0, "validate"); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for _, v := range []int{s.Detector.DayBucket, s.Detector.MinCommonApps,
		s.Detector.MinGroupSize, s.Detector.MaxBucketPopulation,
		s.World.WindowDays, s.World.BaselineApps, s.World.BackgroundApps,
		s.World.WorkerPoolSize, s.World.ChartSize,
		s.World.Apps, s.World.Devices} {
		if v < 0 {
			return fmt.Errorf("scenario %s: negative knob", s.Name)
		}
	}
	return nil
}

// Encode renders the spec in its canonical JSON form.
func (s Spec) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// Decode parses a spec from JSON.
func Decode(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	return s, nil
}
