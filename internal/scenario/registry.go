package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to specs. Built-ins cover the paper's
// observed world plus the adversarial variants of the Section 5.2 open
// question; callers may Register additional specs (e.g. loaded from
// files) before running a sweep.
var (
	regMu    sync.Mutex
	registry = map[string]Spec{}
)

func init() {
	for _, s := range Builtins() {
		if err := Register(s); err != nil {
			panic(err)
		}
	}
}

// Builtins returns the built-in scenario specs, baseline first.
func Builtins() []Spec {
	return []Spec{
		{
			Name:        "paper-baseline",
			Description: "the observed March–June 2019 ecosystem, bit-identical to DefaultConfig/ScaleConfig worlds",
		},
		{
			Name:        "jitter",
			Description: "workers stagger install timing: each completion lands after a personal 0–4 day delay",
			Adversary:   AdversarySpec{Kind: KindJitter, JitterMaxDays: 4},
		},
		{
			Name:        "sybil-split",
			Description: "each campaign draws from one of four reshuffled pool slices, rotating weekly",
			Adversary:   AdversarySpec{Kind: KindSybilSplit, SybilGroups: 4, SybilRotateDays: 7},
		},
		{
			Name:        "device-churn",
			Description: "worker device identities rotate weekly, resetting each identity's install history",
			Adversary:   AdversarySpec{Kind: KindDeviceChurn, ChurnEveryDays: 7},
		},
		{
			Name:        "slow-drip",
			Description: "campaigns deliver at a third of the demand rate, stretched across the window",
			Adversary:   AdversarySpec{Kind: KindSlowDrip, DripFactor: 0.35},
		},
		{
			Name:        "burst",
			Description: "campaigns deliver accumulated demand in one burst every 8 days",
			Adversary:   AdversarySpec{Kind: KindBurst, BurstEveryDays: 8},
		},
		{
			Name:        "organic-mimic",
			Description: "workers fake day-after retention sessions so purchased engagement looks organic",
			Adversary:   AdversarySpec{Kind: KindOrganicMimic, MimicReturnProb: 0.45, MimicDecay: 0.8},
		},
	}
}

// Register adds a spec to the registry; a duplicate name or an invalid
// spec is an error.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// Lookup returns the named spec.
func Lookup(name string) (Spec, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists every registered scenario, "paper-baseline" first and the
// rest sorted, so sweep grids and test matrices iterate deterministically.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		if name != "paper-baseline" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if _, ok := registry["paper-baseline"]; ok {
		names = append([]string{"paper-baseline"}, names...)
	}
	return names
}
