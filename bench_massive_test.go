package repro

// Massive-world benchmarks (DESIGN.md E12): the order-of-magnitude
// scale-up the SoA store columns, the sketch-tier lockstep detector, and
// the spill-to-disk install log were built for. By default they run a
// mid-size world so `go test -bench` stays tractable; the -massive flag
// switches to the full sim.MassiveConfig population (~100k apps, ~1M
// devices). Both are skipped under -short (CI's budget smoke runs the
// engine through TestEngine*, not through these).
//
// Each sub-benchmark reports, beyond ns/op:
//
//	peakRSS-MB     the process peak RSS over the measured section
//	               (VmHWM from /proc/self/status, reset per variant via
//	               /proc/self/clear_refs; 0 off Linux)
//	devices        the world's device population
//	ns/device-day  ns/op normalized by devices×days — comparable across
//	               world sizes, and the number the E12 "within 1.5x of
//	               ScaleConfig" target reads
//
// cmd/benchjson parses the extra columns and derives
// max_world_devices_at_budget (how many devices fit a fixed 2 GiB
// budget, extrapolating the measured peak linearly) per spill variant.

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/lockstep"
	"repro/internal/randx"
	"repro/internal/sim"
)

var massiveFlag = flag.Bool("massive", false,
	"run the massive benchmarks at full sim.MassiveConfig scale (~1M devices) instead of the mid-size default")

// massiveWorldConfig is the benchmark world: full MassiveConfig under
// -massive, otherwise the same shape at a tenth of the population so a
// default bench run finishes in minutes rather than tens of minutes.
// Both sizes keep the paper's full 121-day March-June monitoring window:
// the unbounded variant's install-log and ledger terms grow with every
// simulated day, so the window length IS the experiment.
func massiveWorldConfig() sim.Config {
	cfg := sim.MassiveConfig()
	if !*massiveFlag {
		if err := cfg.Resize(20_000, 100_000, 0); err != nil {
			panic(err)
		}
	}
	return cfg
}

// resetPeakRSS resets the kernel's peak-RSS watermark for this process
// (Linux: write "5" to /proc/self/clear_refs). Best-effort: on other
// platforms the subsequent read reports 0 and the metric is omitted.
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// peakRSSMB reads VmHWM from /proc/self/status in MB (0 if unavailable).
func peakRSSMB() float64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			kb, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 64)
			if err != nil {
				return 0
			}
			return kb / 1024
		}
	}
	return 0
}

// benchMassiveRun replays the massive world once per iteration and
// reports the peak-RSS and per-device-day metrics. spill toggles the
// bounded-memory model: off clears InstallLogWindow and re-enables the
// ledger's transaction history (the old everything-resident behavior,
// where both grow O(run)); on keeps MassiveConfig's O(window) bounds.
func benchMassiveRun(b *testing.B, spill bool) {
	cfg := massiveWorldConfig()
	if !spill {
		cfg.InstallLogWindow = 0
		cfg.LedgerBalancesOnly = false
	}
	devices := cfg.WorkerPoolSize * len(iip.StandardNames)
	deviceDays := float64(devices) * float64(cfg.Window.Days())

	// A deployment holding a fixed memory budget runs with tightened GC
	// (GOGC well below 100, or GOMEMLIMIT at the budget); measure both
	// variants under that same discipline so peakRSS-MB reflects each
	// memory model's footprint rather than default-GOGC headroom, which
	// would double whichever variant's live heap is smaller.
	defer debug.SetGCPercent(debug.SetGCPercent(30))

	// Return the previous variant's freed memory to the OS before
	// resetting the watermark, so each variant's peak is its own.
	debug.FreeOSMemory()
	resetPeakRSS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cfg
		c.Seed += uint64(i)
		w, err := sim.NewWorld(c)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := w.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(peakRSSMB(), "peakRSS-MB")
	b.ReportMetric(float64(devices), "devices")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/deviceDays, "ns/device-day")
}

// BenchmarkMassiveWorld is the E12 headline: the full engine at massive
// scale, with the install log unbounded (spill=off — resident memory
// grows with the run) versus windowed to disk (spill=on — resident
// memory O(window)). Identical simulation results either way; only the
// peak-RSS column differs.
func BenchmarkMassiveWorld(b *testing.B) {
	if testing.Short() {
		b.Skip("massive world benchmark skipped in -short")
	}
	b.Run("spill=off", func(b *testing.B) { benchMassiveRun(b, false) })
	b.Run("spill=on", func(b *testing.B) { benchMassiveRun(b, true) })
}

// BenchmarkMassiveLockstepIngest drives the sketch-tier detector's
// online ingest at massive device counts: one million devices under
// -massive, one hundred thousand by default. The stream mixes background
// noise with planted lockstep groups so both the cell fan-out and the
// bucket-population cap are exercised; ns/op is the cost of one full
// pass over the synthesized stream.
func BenchmarkMassiveLockstepIngest(b *testing.B) {
	if testing.Short() {
		b.Skip("massive lockstep benchmark skipped in -short")
	}
	devices := 100_000
	if *massiveFlag {
		devices = 1_000_000
	}
	const appsPerDevice = 4
	cfg := lockstep.Config{
		DayBucket:           3,
		MinCommonApps:       3,
		MinGroupSize:        3,
		MaxBucketPopulation: 500,
		SketchHashes:        64,
		SketchRows:          8,
		SketchSeed:          42,
	}
	// Synthesize the event stream once, off the clock: mostly uniform
	// background installs, plus planted 20-device groups marching through
	// the same apps on the same days.
	type ev struct {
		dev, app string
		day      dates.Date
	}
	r := randx.New(97)
	events := make([]ev, 0, devices*appsPerDevice)
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("device-%07d", d)
		// Every hundredth device also installs the same viral app the same
		// day: one (app, bucket) cell far over MaxBucketPopulation, so the
		// retraction path runs inside the measured pass.
		if d%100 == 0 {
			events = append(events, ev{dev, "viral-app", dates.Date(1)})
		}
		if d%1000 < 20 { // one planted group per thousand devices
			g := d / 1000
			for k := 0; k < appsPerDevice; k++ {
				events = append(events, ev{dev, fmt.Sprintf("lockstep-app-%d-%d", g, k), dates.Date(k * 3)})
			}
			continue
		}
		for k := 0; k < appsPerDevice; k++ {
			app := fmt.Sprintf("bg-app-%d", r.IntN(devices/10))
			events = append(events, ev{dev, app, dates.Date(r.IntN(30))})
		}
	}

	debug.FreeOSMemory()
	resetPeakRSS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := lockstep.NewDetector(cfg)
		det.Grow(len(events))
		for _, e := range events {
			det.Ingest(e.dev, e.app, e.day)
		}
		if got := det.Stats(); got.BucketsRetracted == 0 {
			b.Fatal("stream never crossed the bucket cap")
		}
	}
	b.ReportMetric(peakRSSMB(), "peakRSS-MB")
	b.ReportMetric(float64(devices), "devices")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(events)), "ns/install")
}
