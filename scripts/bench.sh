#!/usr/bin/env bash
# Record the PR's key benchmarks into BENCH_PR5.json so the performance
# trajectory is versioned alongside the code.
#
# Usage:
#   scripts/bench.sh before   # run once on the parent commit's tree
#   scripts/bench.sh after    # run on the PR tree (default)
#
# Heavy end-to-end engine benchmarks run at -benchtime=1x (each iteration
# replays a full simulated window); microbenchmarks get longer benchtimes
# so ns/op is stable. Everything runs with -count=3 -benchmem. Each
# recorded run carries its environment (go version, GOMAXPROCS, CPU
# model) so the BENCH_*.json trajectory across PRs stays interpretable.
#
# Notes on before/after coverage:
#   - BenchmarkSimRunEvents (E6/E7 log-write overhead) exists on both
#     trees; PR 5's interning of offer IDs, account names, and packages
#     into the run log's string table is measured by its events=on line.
#   - The E5 suites (DeliverOne/Postback/LedgerPost) date from PR 3.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${BENCH_OUT:-BENCH_PR5.json}"

suites=(
  '.:BenchmarkSimRunEvents:1x'
  '.:BenchmarkSimRunScale/workers=1$:1x'
  '.:BenchmarkStoreRecordParallel$:20000x'
  './internal/playstore:BenchmarkStepDayScale$:20x'
  './internal/playstore:BenchmarkAppWindow:5000x'
  './internal/playstore:BenchmarkChartRank:20000x'
  './internal/lockstep:BenchmarkLockstepIngest$:5x'
  './internal/sim:BenchmarkDeliverOne$:20000x'
  './internal/mediator:BenchmarkPostback$:100000x'
  './internal/mediator:BenchmarkLedgerPost$:100000x'
)

go run ./cmd/benchjson -label "$label" -out "$out" -count 3 "${suites[@]}"
