#!/usr/bin/env bash
# Record the PR's key benchmarks into BENCH_PR4.json so the performance
# trajectory is versioned alongside the code.
#
# Usage:
#   scripts/bench.sh before   # run once on the parent commit's tree
#   scripts/bench.sh after    # run on the PR tree (default)
#
# Heavy end-to-end engine benchmarks run at -benchtime=1x (each iteration
# replays a full simulated window); microbenchmarks get longer benchtimes
# so ns/op is stable. Everything runs with -count=3 -benchmem.
#
# Notes on before/after coverage:
#   - BenchmarkSimRunEvents (E6 log-write overhead) only exists on the PR
#     tree; the "before" baseline for it is BenchmarkSimRunScale/workers=1
#     (events=off is the same run).
#   - BenchmarkLockstepIngest benchmarks Detect, which exists on both
#     trees; to record "before", copy internal/lockstep/bench_test.go
#     onto the parent tree first (the fixture only uses Detect + synth).
#   - The E5 suites (DeliverOne/Postback/LedgerPost) date from PR 3.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${BENCH_OUT:-BENCH_PR4.json}"

suites=(
  '.:BenchmarkSimRunScale/workers=1$:1x'
  '.:BenchmarkStoreRecordParallel$:20000x'
  './internal/playstore:BenchmarkStepDayScale$:20x'
  './internal/playstore:BenchmarkAppWindow:5000x'
  './internal/playstore:BenchmarkChartRank:20000x'
  './internal/lockstep:BenchmarkLockstepIngest$:5x'
)
if [ "$label" != "before" ]; then
  suites+=(
    '.:BenchmarkSimRunEvents:1x'
    './internal/sim:BenchmarkDeliverOne$:20000x'
    './internal/mediator:BenchmarkPostback$:100000x'
    './internal/mediator:BenchmarkLedgerPost$:100000x'
  )
fi

go run ./cmd/benchjson -label "$label" -out "$out" -count 3 "${suites[@]}"
