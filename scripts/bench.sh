#!/usr/bin/env bash
# Record the PR's key benchmarks into BENCH_PR10.json so the performance
# trajectory is versioned alongside the code.
#
# Usage:
#   scripts/bench.sh before   # run once on the parent commit's tree
#   scripts/bench.sh after    # run on the PR tree (default)
#
# Heavy end-to-end engine benchmarks run at -benchtime=1x (each iteration
# replays a full simulated window); microbenchmarks get longer benchtimes
# so ns/op is stable. Everything runs with -count=3 -benchmem. Each
# recorded run carries its environment (go version, GOMAXPROCS, CPU
# model) so the BENCH_*.json trajectory across PRs stays interpretable.
# BENCH_COUNT overrides -count (default 3) — this host's within-label
# noise is ±20% on the heavy 1x suites, so the derived metrics want more
# samples when the machine allows it.
#
# Notes on before/after coverage:
#   - BenchmarkSimRunEvents (E6/E8 log-write overhead) exists on both
#     trees; PR 6's batched frames (one CRC per day-batch instead of one
#     per event frame) are measured by its events=on line. benchjson
#     derives events_on_off_overhead_pct from the recorded medians.
#   - BenchmarkRunLogSeek (E8 segmented seek vs full replay) is new in
#     PR 6 and only exists on the after tree; bench.sh skips suites whose
#     pattern matches nothing so the before run still completes.
#   - The E5 suites (DeliverOne/Postback/LedgerPost) date from PR 3.
#   - BenchmarkSimRunMetrics (E11 observability overhead) is new in PR 9
#     and only exists on the after tree; benchjson derives
#     metrics_on_off_overhead_pct (<1% target) from the per-variant
#     minima. The target is far below this host's ±20% per-sample noise,
#     so the suite pins its own high count (the :countN spec suffix) —
#     each 1x sample is ~1.5s, so dozens of samples are still cheap, and
#     the min estimator needs enough draws for both variants to catch a
#     near-quiet window.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-after}"
out="${BENCH_OUT:-BENCH_PR10.json}"
count="${BENCH_COUNT:-3}"

suites=(
  '.:BenchmarkSimRunEvents:1x'
  '.:BenchmarkSimRunScale:1x'
  '.:BenchmarkStoreRecordParallel$:20000x'
  './internal/playstore:BenchmarkStepDayScale$:20x'
  './internal/playstore:BenchmarkAppWindow:5000x'
  './internal/playstore:BenchmarkChartRank:20000x'
  './internal/lockstep:BenchmarkLockstepIngest$:5x'
  './internal/sim:BenchmarkDeliverOne$:20000x'
  './internal/mediator:BenchmarkPostback$:100000x'
  './internal/mediator:BenchmarkLedgerPost$:100000x'
)
# Seek benchmark exists only on trees with the segmented v3 format.
# (grep must drain the whole stream: with pipefail, `grep -q` exiting at
# first match can SIGPIPE `go test -list` and silently drop the suite.)
if go test -list 'BenchmarkRunLogSeek$' . | grep BenchmarkRunLogSeek > /dev/null; then
  suites+=('.:BenchmarkRunLogSeek:1x')
fi
# Metrics benchmark exists only on trees with internal/obs (PR 9).
if go test -list 'BenchmarkSimRunMetrics$' . | grep BenchmarkSimRunMetrics > /dev/null; then
  suites+=('.:BenchmarkSimRunMetrics:1x:count40')
fi
# Massive-world suites exist only on trees with the E12 scaling work
# (PR 10). They run at the mid-size default (100k devices over the full
# 121-day paper window) so bench.sh stays tractable on one core; rerun by
# hand with -massive for the full ~1M-device world. The world suite pins
# count=1: each extra sample replays the ~12M-device-day window twice
# (both spill variants), and benchjson's derived max_world_devices_at_
# budget reads the peak-RSS watermark, which is stable across samples.
if go test -list 'BenchmarkMassiveWorld$' . | grep BenchmarkMassiveWorld > /dev/null; then
  suites+=('.:BenchmarkMassiveWorld$:1x:count1')
  suites+=('.:BenchmarkMassiveLockstepIngest$:1x:count1')
fi

go run ./cmd/benchjson -label "$label" -out "$out" -count "$count" "${suites[@]}"
