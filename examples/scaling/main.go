// Scaling: run the identical seeded world through the day engine at
// several worker-pool widths and show that (a) every run produces
// bit-identical results — the engine's determinism contract — and (b)
// wall-clock drops as workers are added on multi-core hardware.
//
// The determinism model is what makes this safe to show: each app and
// each campaign owns a derived random stream, writes are partitioned so
// no two workers touch the same float, and cross-cutting effects (ledger
// postings, install log) are buffered per unit and flushed in canonical
// order. See DESIGN.md.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/sim"
)

func main() {
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	fmt.Printf("replaying the same seeded world at %v workers (GOMAXPROCS=%d)\n\n",
		widths, runtime.GOMAXPROCS(0))
	fmt.Printf("%-9s %-10s %-12s %-14s %-14s %s\n",
		"workers", "wall", "organic", "incentivized", "revenueUSD", "ledger sum")

	var first sim.RunStats
	for i, workers := range widths {
		cfg := sim.TinyConfig()
		cfg.Workers = workers
		world, err := sim.NewWorld(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		stats, err := world.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9d %-10s %-12d %-14d %-14.2f %.6f\n",
			workers, time.Since(t0).Round(time.Millisecond),
			stats.OrganicInstalls, stats.IncentivizedInstalls,
			stats.RevenueUSD, world.Ledger.Sum())
		if i == 0 {
			first = stats
		} else if stats != first {
			log.Fatalf("determinism violated: %+v != %+v", stats, first)
		}
	}
	fmt.Println("\nall rows identical: worker count changes wall-clock, never results")
}
