// Quickstart: build a small synthetic incentivized-install world, buy a
// no-activity campaign for a fresh app, run the simulation, and watch the
// app's public Play Store install count get manipulated — the honey-app
// effect of the paper's Section 3 in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/playstore"
	"repro/internal/sim"
)

func main() {
	// 1. A deterministic world: Play Store, 7 IIPs, affiliate apps,
	//    crowd workers, mediator, ledger.
	cfg := sim.TinyConfig()
	world, err := sim.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Publish our own app, starting from zero installs.
	world.Store.AddDeveloper(playstore.Developer{ID: "me", Name: "My Startup", Country: "USA"})
	const pkg = "com.mystartup.demo"
	if err := world.Store.Publish(playstore.Listing{
		Package: pkg, Title: "Demo App", Genre: "Tools",
		Developer: "me", Released: cfg.Window.Start,
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Register with an unvetted IIP ($20 minimum, no paperwork) and
	//    buy 600 "Install and Launch" completions.
	rank := world.Platforms[iip.RankApp]
	if err := rank.RegisterDeveloper("me", iip.Documentation{}); err != nil {
		log.Fatal(err)
	}
	if err := rank.Deposit("me", 100); err != nil {
		log.Fatal(err)
	}
	campaign, err := rank.LaunchCampaign(iip.CampaignSpec{
		Developer: "me", AppPackage: pkg,
		Description:   "Install and Launch",
		UserPayoutUSD: 0.02, Target: 600,
		Window: dates.Range{Start: cfg.Window.Start, End: cfg.Window.End},
	})
	if err != nil {
		log.Fatal(err)
	}
	world.Mediator.RegisterOffer(campaign.OfferID, 0)

	before, _ := world.Store.Profile(pkg)

	// 4. Deliver completions through the crowd-worker pool (what the
	//    sim engine does for every planned campaign).
	pool := world.Pools[iip.RankApp]
	day := cfg.Window.Start
	for i := 0; ; i++ {
		worker := pool[i%len(pool)]
		if _, err := rank.RecordCompletion(campaign.OfferID, day); err != nil {
			break // target reached
		}
		if err := world.Store.RecordInstall(pkg, playstore.Install{
			Day: day, Source: playstore.SourceReferral, FraudScore: worker.FraudScore(),
		}); err != nil {
			log.Fatal(err)
		}
	}
	world.Store.StepDay(day)
	after, _ := world.Store.Profile(pkg)

	fmt.Printf("public install count before campaign: %s\n", before.InstallLabel)
	fmt.Printf("public install count after  campaign: %s\n", after.InstallLabel)
	snap, _ := rank.Campaign(campaign.OfferID)
	fmt.Printf("completions delivered: %d, cost per install: $%.3f\n",
		snap.Delivered, rank.GrossCostPerInstall(0.02))
}
