// Example adversaries: the Section 5.2 open question, executed.
//
// The paper proposes lockstep detection over the store's install stream
// as a defense against incentivized install campaigns, and asks whether
// it survives adversaries that adapt. This example runs a small
// scenario×seed grid — the observed world plus two evasion strategies —
// and prints detector precision/recall/F1 per adversary against each
// world's recorded ground truth.
//
// Run with: go run ./examples/adversaries
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func main() {
	fmt.Println("Registered scenarios:")
	for _, name := range scenario.Names() {
		sp, _ := scenario.Lookup(name)
		fmt.Printf("  %-16s %s\n", name, sp.Description)
	}
	fmt.Println()

	res, err := sweep.Run(sweep.Options{
		Scenarios: []string{"paper-baseline", "sybil-split", "device-churn"},
		Seeds:     []uint64{20190301},
		Logf:      log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	report.WriteSweep(os.Stdout, res)

	baseline, _ := res.Baseline()
	for _, s := range res.Scenarios {
		if s.Name == baseline.Name {
			continue
		}
		fmt.Printf("%s: recall %.3f vs baseline %.3f (Δ %+.3f)\n",
			s.Name, s.Recall, baseline.Recall, s.Recall-baseline.Recall)
	}
}
