// Monitoring: follow a live run through its event-sourced log instead of
// polling end-of-run aggregates. The simulation writes its append-only
// run log to disk while a tail consumer — which could just as well live
// in another process — reads complete frames as each day barrier flushes,
// feeds the device-resolved install stream into the incremental lockstep
// detector (the Section 5.2 defense), and reports detections as they
// form, day by day, while the run is still executing.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dates"
	"repro/internal/lockstep"
	"repro/internal/sim"
	"repro/internal/stream"
)

func main() {
	cfg := sim.TinyConfig()
	w, err := sim.NewWorld(cfg)
	must(err)

	dir, err := os.MkdirTemp("", "runlog-*")
	must(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "run.log")
	f, err := os.Create(path)
	must(err)
	defer f.Close()

	runLog, err := w.NewRunLog(f)
	must(err)

	// The online consumer: a tail over the same file (ReadAt-addressed,
	// so it never trips over a partially written frame) plus the
	// incremental detector.
	tail := stream.NewTail(f)
	det := lockstep.NewDetector(lockstep.DefaultConfig())
	var (
		ev       stream.Event
		curDay   dates.Date
		installs int
		flagged  = map[string]bool{}
	)
	drain := func() {
		for {
			ok, err := tail.Next(&ev)
			must(err)
			if !ok {
				return
			}
			switch ev.Kind {
			case stream.KindDayStart:
				curDay = ev.Day
			case stream.KindInstall:
				det.Ingest(ev.Device, ev.Pkg, curDay)
				installs++
			case stream.KindInstallBatch:
				for _, dev := range ev.Devices {
					det.Ingest(dev, ev.Pkg, curDay)
					installs++
				}
			}
		}
	}

	fmt.Printf("monitoring %s (%d-day window) via %s\n\n", "tiny world", cfg.Window.Days(), path)
	fmt.Printf("%-12s %10s %8s %8s %9s\n", "day", "installs", "groups", "flagged", "new")
	_, err = w.RunOpts(sim.RunOptions{
		Log: runLog,
		Hook: func(day dates.Date) error {
			drain()
			groups := det.Groups()
			newDevices := 0
			total := 0
			for _, g := range groups {
				for _, d := range g.Devices {
					total++
					if !flagged[d] {
						flagged[d] = true
						newDevices++
					}
				}
			}
			marker := ""
			if newDevices > 0 {
				marker = fmt.Sprintf("+%d", newDevices)
			}
			fmt.Printf("%-12s %10d %8d %8d %9s\n", day, installs, len(groups), total, marker)
			return nil
		},
	})
	must(err)

	// Score the online detections against the simulator's ground truth,
	// exactly as the post-hoc Section 5.2 analysis does (only workers that
	// actually appear in the install stream can be recalled).
	active := make(map[string]bool, w.InstallLog.Len())
	for rec := range w.InstallLog.All() {
		active[rec.Device] = true
	}
	truth := map[string]bool{}
	for _, pool := range w.Pools {
		for _, worker := range pool {
			if active[worker.ID] {
				truth[worker.ID] = true
			}
		}
	}
	eval := lockstep.Evaluate(det.Groups(), truth)
	fmt.Printf("\nonline lockstep detection after %d streamed installs: %s\n", installs, eval)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
