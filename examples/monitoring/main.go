// Monitoring: stand up real offer-wall HTTP servers for two IIPs, drive
// the instrumented affiliate apps through the recording MITM proxy (the
// paper's Figure 3 infrastructure), and classify the intercepted offers —
// the in-the-wild measurement pipeline of Section 4.1 end to end.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/affiliate"
	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/monitor"
	"repro/internal/offers"
)

func main() {
	// Two live platforms with a handful of campaigns.
	platforms := iip.StandardPlatforms()
	fyber, ayet := platforms[iip.Fyber], platforms[iip.AyetStudios]
	mustRegister(fyber, "dev", iip.Documentation{TaxID: "T", BankAccount: "B"})
	mustRegister(ayet, "dev", iip.Documentation{})
	must(fyber.Deposit("dev", 1e5))
	must(ayet.Deposit("dev", 1e5))

	window := dates.Range{Start: dates.StudyStart, End: dates.StudyEnd}
	launch(fyber, "com.example.game", "Install and Reach level 10", offers.Usage, 0.50, window)
	launch(fyber, "com.example.shop", "Install and make a $4.99 in-app purchase", offers.Purchase, 2.98, window)
	launch(ayet, "com.example.news", "Install and Launch", offers.NoActivity, 0.05, window)
	launch(ayet, "com.example.cash",
		"Install and reach 850 points by completing tasks (watch videos, complete surveys)",
		offers.Usage, 0.67, window)

	// Offer-wall HTTP servers.
	apps := affiliate.StandardAffiliates()
	rates := map[string]float64{}
	for _, a := range apps {
		rates[a.Package] = a.PointsPerUSD
	}
	endpoints := map[string]string{}
	for name, p := range map[string]*iip.Platform{iip.Fyber: fyber, iip.AyetStudios: ayet} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		must(err)
		srv := &http.Server{Handler: iip.NewServer(p, rates).Handler(), ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
		defer srv.Close()
		endpoints[name] = "http://" + ln.Addr().String()
	}

	// Instrument only affiliate apps whose every wall has an endpoint.
	var instrumented []*affiliate.App
	for _, a := range apps {
		ok := true
		for _, n := range a.IIPs {
			if _, have := endpoints[n]; !have {
				ok = false
			}
		}
		if ok {
			instrumented = append(instrumented, a)
		}
	}

	milk, err := monitor.NewMilker(instrumented, endpoints)
	must(err)
	defer milk.Close()
	must(milk.MilkDay(dates.StudyStart))

	cls := offers.RuleClassifier{}
	fmt.Printf("milked %d unique offers via %d instrumented affiliate apps from %d countries:\n\n",
		len(milk.Offers()), len(instrumented), len(milk.Countries))
	for _, o := range milk.Offers() {
		fmt.Printf("%-14s %-18s $%.2f  %-24v arbitrage=%v\n    %q\n",
			o.IIP, o.AppPackage, o.PayoutUSD, cls.Classify(o.Description),
			offers.IsArbitrage(o.Description), o.Description)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRegister(p *iip.Platform, dev string, docs iip.Documentation) {
	must(p.RegisterDeveloper(dev, docs))
}

func launch(p *iip.Platform, pkg, desc string, t offers.Type, payout float64, w dates.Range) {
	_, err := p.LaunchCampaign(iip.CampaignSpec{
		Developer: "dev", AppPackage: pkg, Description: desc,
		Type: t, UserPayoutUSD: payout, Target: 1000, Window: w,
	})
	must(err)
}
