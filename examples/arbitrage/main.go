// Arbitrage: walk through the economics of an arbitrage activity offer
// (Section 4.3.2): the developer pays users to complete in-app tasks —
// surveys, video ads, third-party offers — that themselves pay the
// developer commissions, and every completion inflates revenue-looking
// metrics regardless of profitability.
package main

import (
	"fmt"
	"log"

	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/mediator"
	"repro/internal/offers"
)

func main() {
	desc := "Install and reach 850 points by completing tasks (watch videos, complete surveys)"
	fmt.Printf("offer: %q\n", desc)
	fmt.Printf("classified as: %v, arbitrage: %v\n\n",
		offers.RuleClassifier{}.Classify(desc), offers.IsArbitrage(desc))

	platform := iip.StandardPlatforms()[iip.Fyber]
	if err := platform.RegisterDeveloper("dev", iip.Documentation{TaxID: "T", BankAccount: "B"}); err != nil {
		log.Fatal(err)
	}
	if err := platform.Deposit("dev", 5000); err != nil {
		log.Fatal(err)
	}
	const payout = 0.67 // the paper's "Cash Time" example pays $0.67
	campaign, err := platform.LaunchCampaign(iip.CampaignSpec{
		Developer: "dev", AppPackage: "com.cashtime.earn",
		Description: desc, Type: offers.Usage, Arbitrage: true,
		UserPayoutUSD: payout, Target: 1000,
		Window: dates.Range{Start: dates.StudyStart, End: dates.StudyEnd},
	})
	if err != nil {
		log.Fatal(err)
	}

	ledger := mediator.NewLedger()
	med := mediator.New("appsflyer")
	med.RegisterOffer(campaign.OfferID, offers.Usage)

	// Per completed user: the developer pays the campaign cost, but the
	// in-app tasks (video ads, surveys, shopping deals) earn commissions.
	const commissionsPerUser = 1.10 // what the embedded ad/survey networks pay
	const completions = 1000

	devCost, devRevenue := 0.0, 0.0
	for i := 0; i < completions; i++ {
		d, err := platform.RecordCompletion(campaign.OfferID, dates.StudyStart)
		if err != nil {
			log.Fatal(err)
		}
		devCost += d.Gross + med.FeePerUser
		devRevenue += commissionsPerUser
		if err := ledger.Post("adnetworks", mediator.DeveloperAccount("dev"), commissionsPerUser, "task commissions"); err != nil {
			log.Fatal(err)
		}
	}

	gross := platform.GrossCostPerInstall(payout)
	fmt.Printf("completions:               %d\n", completions)
	fmt.Printf("cost per completion:       $%.3f (user payout $%.2f + IIP/affiliate cuts) + $%.2f attribution\n",
		gross, payout, med.FeePerUser)
	fmt.Printf("commissions per user:      $%.2f\n", commissionsPerUser)
	fmt.Printf("total campaign cost:       $%.2f\n", devCost)
	fmt.Printf("total task commissions:    $%.2f\n", devRevenue)
	fmt.Printf("net:                       $%.2f\n\n", devRevenue-devCost)
	fmt.Println("Even when the net is negative, the developer has manufactured")
	fmt.Println("gross-revenue growth — the metric investors and top-grossing")
	fmt.Println("charts look at — which is the paper's arbitrage concern.")
}
