// Enforcement: sweep the Play Store install-filter sensitivity and measure
// how many fraudulent installs get removed versus how often the honey
// app's purchased installs survive — the defense-effectiveness question of
// the paper's Section 5.2 turned into an experiment.
package main

import (
	"fmt"
	"log"

	"repro/internal/dates"
	"repro/internal/playstore"
	"repro/internal/randx"
)

func main() {
	fmt.Println("Enforcement sensitivity sweep: 2,100 bot-farm installs (fraud 0.95)")
	fmt.Println("plus 600 organic installs (fraud 0.05) on one app, 30 days.")
	fmt.Println()
	fmt.Printf("%-12s %-12s %-12s %-10s\n", "sensitivity", "detections", "removed", "final bin")

	for _, sens := range []float64{0, 0.05, 0.25, 0.5, 1.0} {
		store := playstore.New(dates.StudyStart)
		store.AddDeveloper(playstore.Developer{ID: "d"})
		if err := store.Publish(playstore.Listing{
			Package: "bot.target", Title: "T", Genre: "Tools", Developer: "d",
		}); err != nil {
			log.Fatal(err)
		}
		enforcer := playstore.NewEnforcer(randx.New(7), sens)
		store.SetEnforcer(enforcer)

		for d := 0; d < 30; d++ {
			day := dates.StudyStart.AddDays(d)
			if err := store.RecordInstallBatch("bot.target", day, 70, playstore.SourceReferral, 0.95); err != nil {
				log.Fatal(err)
			}
			if err := store.RecordInstallBatch("bot.target", day, 20, playstore.SourceOrganic, 0.05); err != nil {
				log.Fatal(err)
			}
			store.StepDay(day)
		}

		exact, _ := store.ExactInstalls("bot.target")
		removed := int64(30*90) - exact
		fmt.Printf("%-12.2f %-12d %-12d %s\n",
			sens, enforcer.Detections(), removed, playstore.BinLabel(playstore.InstallBin(exact)))
	}

	fmt.Println()
	fmt.Println("At the weak default sensitivity the bot installs survive —")
	fmt.Println("matching the paper's finding that Google Play's enforcement")
	fmt.Println("failed to remove the honey app's 1,679 purchased installs.")
}
