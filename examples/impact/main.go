// Impact: run the full measurement pipeline on a small world and print the
// chi-squared impact comparisons of the paper's Section 4.3 — install-count
// increases, top-chart appearances, and investor funding for baseline vs.
// vetted vs. unvetted app sets.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	cfg := sim.TinyConfig()
	study, err := core.Run(cfg, core.Options{
		MilkEveryDays: 4,
		SkipHoney:     true,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer study.Close()
	r := &study.Results
	fmt.Printf("\ndataset: %d offers across %d advertised apps\n\n",
		r.Dataset.Offers, r.Dataset.UniqueApps)
	report.WriteOutcome(os.Stdout, "Install-count increases (Table 5)", r.Table5)
	report.WriteOutcome(os.Stdout, "Top-chart appearances (Table 6)", r.Table6)
	report.WriteOutcome(os.Stdout, "Funding raised after campaigns (Table 7)", r.Table7)

	fmt.Println("Interpretation, as in the paper:")
	compare("apps on unvetted IIPs increase install counts", r.Table5.Unvetted, r.Table5.Baseline)
	compare("apps on vetted IIPs appear in top charts", r.Table6.Vetted, r.Table6.Baseline)
	compare("matched developers on vetted IIPs raise funding", r.Table7.Vetted, r.Table7.Baseline)
}

// compare prints a treatment-vs-baseline summary, avoiding nonsense ratios
// when the small-world baseline has zero positives.
func compare(what string, treatment, baseline core.GroupCell) {
	switch {
	case treatment.Frac() <= baseline.Frac():
		fmt.Printf("- %s no more often than baseline (%.1f%% vs %.1f%%)\n",
			what, 100*treatment.Frac(), 100*baseline.Frac())
	case baseline.Positive == 0:
		fmt.Printf("- %s %.1f%% of the time; the baseline never did\n",
			what, 100*treatment.Frac())
	default:
		fmt.Printf("- %s %.1fx more often than baseline\n",
			what, treatment.Frac()/baseline.Frac())
	}
}
