package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark times the
// analysis that produces one artifact against a fully built and simulated
// world; the world itself is constructed once per benchmark binary.
//
// Run with: go test -bench=. -benchmem .

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dates"
	"repro/internal/iip"
	"repro/internal/lockstep"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/offers"
	"repro/internal/playstore"
	"repro/internal/randx"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stream"
)

var (
	benchOnce     sync.Once
	benchStudy    *core.Study
	benchAnalysis *core.Analysis
	benchErr      error
)

// benchFixture runs the full study once (small world, full pipeline).
func benchFixture(b *testing.B) (*core.Study, *core.Analysis) {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = core.Run(sim.TinyConfig(), core.Options{MilkEveryDays: 4})
		if benchErr == nil {
			benchAnalysis = benchStudy.NewAnalysis()
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy, benchAnalysis
}

// --- Tables ---

func BenchmarkTable1IIPCharacterization(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := a.Table1(); len(rows) != 7 {
			b.Fatal("table 1 wrong size")
		}
	}
}

func BenchmarkTable2AffiliateMatrix(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := a.Table2(); len(rows) != 8 {
			b.Fatal("table 2 wrong size")
		}
	}
}

func BenchmarkTable3OfferTypes(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := a.Table3(); len(rows) == 0 {
			b.Fatal("table 3 empty")
		}
	}
}

func BenchmarkTable4IIPSummary(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := a.Table4(); len(rows) == 0 {
			b.Fatal("table 4 empty")
		}
	}
}

func BenchmarkTable5InstallIncrease(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6TopCharts(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7Funding(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8FundedOffers(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Table8()
	}
}

// --- Figures ---

// BenchmarkFigure1Workflow times one complete offer lifecycle through the
// Figure 1 money/offer flow: campaign launch, click tracking, completion
// certification, and settlement.
func BenchmarkFigure1Workflow(b *testing.B) {
	platform := iip.StandardPlatforms()[iip.Fyber]
	if err := platform.RegisterDeveloper("dev", iip.Documentation{TaxID: "T", BankAccount: "B"}); err != nil {
		b.Fatal(err)
	}
	if err := platform.Deposit("dev", 1e9); err != nil {
		b.Fatal(err)
	}
	window := dates.Range{Start: dates.StudyStart, End: dates.StudyEnd}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := platform.LaunchCampaign(iip.CampaignSpec{
			Developer: "dev", AppPackage: "bench.app",
			Description: "Install and Launch", UserPayoutUSD: 0.06,
			Target: 1, Window: window,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := platform.RecordCompletion(c.OfferID, dates.StudyStart); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2RankAppClaims(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := a.Figure2()
		found := false
		for _, r := range rows {
			if r.AdvertisesRankBoost {
				found = true
			}
		}
		if !found {
			b.Fatal("manipulation claim not detected")
		}
	}
}

// BenchmarkFigure3Infrastructure times one full milking pass — UI fuzzing
// of every instrumented affiliate app through the recording proxy from all
// eight vantage countries.
func BenchmarkFigure3Infrastructure(b *testing.B) {
	s, _ := benchFixture(b)
	day := s.World.Cfg.Window.End
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Milker.MilkDay(day); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4BaselineHistogram(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bins := a.Figure4(); len(bins) != 8 {
			b.Fatal("figure 4 wrong size")
		}
	}
}

func BenchmarkFigure5CaseStudies(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Figure5()
	}
}

func BenchmarkFigure6AdLibraryCDF(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section experiments ---

// BenchmarkSection3HoneyExperiment times the full honey-app experiment:
// publishing, purchasing three campaigns, delivering 1,679 installs with
// HTTP telemetry, and analyzing the collected events.
func BenchmarkSection3HoneyExperiment(b *testing.B) {
	cfg := sim.TinyConfig()
	cfg.BackgroundApps, cfg.BaselineApps = 10, 10
	cfg.TotalAdvertised, cfg.OffersTarget = 7, 7
	for name := range cfg.AppsPerIIP {
		cfg.AppsPerIIP[name] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		if _, err := core.RunHoneyOnly(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection5Enforcement(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Enforcement()
	}
}

// BenchmarkSection5LockstepDetector times the proposed-defense detector
// over the study's device-resolved install stream plus organic decoys.
func BenchmarkSection5LockstepDetector(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l := a.Lockstep(); l.Groups == 0 {
			b.Fatal("detector found nothing")
		}
	}
}

// BenchmarkAblationLockstepThreshold sweeps the detector's MinCommonApps
// threshold (looser thresholds trade precision for recall and cost).
func BenchmarkAblationLockstepThreshold(b *testing.B) {
	s, _ := benchFixture(b)
	var events []lockstep.Event
	for rec := range s.World.InstallLog.All() {
		events = append(events, lockstep.Event{Device: rec.Device, App: rec.App, Day: rec.Day})
	}
	for _, min := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("minCommon=%d", min), func(b *testing.B) {
			cfg := lockstep.DefaultConfig()
			cfg.MinCommonApps = min
			for i := 0; i < b.N; i++ {
				lockstep.Detect(events, cfg)
			}
		})
	}
}

func BenchmarkArbitrageAnalysis(b *testing.B) {
	_, a := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Arbitrage()
	}
}

// --- End-to-end ---

// BenchmarkFullStudy times the entire pipeline on the small world: world
// build, honey experiment, 41 simulated days with crawling and milking
// over live HTTP, and all analyses.
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.TinyConfig()
		cfg.Seed += uint64(i)
		if _, err := core.Run(cfg, core.Options{MilkEveryDays: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine scaling (DESIGN.md: "Sharded store + parallel day engine") ---

// benchSimRun times the day engine alone: world construction happens off
// the clock, each iteration replays the full window at the given worker
// count. Results are identical for every worker count (asserted by
// TestEngineDeterministicAcrossWorkerCounts); only wall-clock differs.
// The ns/device-day metric normalizes by world size, making the number
// comparable against the massive-scale benchmarks (DESIGN.md E12).
func benchSimRun(b *testing.B, cfg sim.Config, workers int) {
	b.Helper()
	cfg.Workers = workers
	deviceDays := float64(cfg.WorkerPoolSize*len(iip.StandardNames)) * float64(cfg.Window.Days())
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cfg
		c.Seed += uint64(i)
		w, err := sim.NewWorld(c)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := w.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/deviceDays, "ns/device-day")
}

// BenchmarkSimRunTiny is the small-world engine baseline (DESIGN.md E1).
// The pooled sub-benchmark is named "workers=max" (not the numeric
// GOMAXPROCS) so names are stable across machines and never collide with
// "workers=1" on single-core hosts.
func BenchmarkSimRunTiny(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchSimRun(b, sim.TinyConfig(), 1) })
	b.Run("workers=max", func(b *testing.B) { benchSimRun(b, sim.TinyConfig(), 0) })
}

// BenchmarkSimRunScale replays the ~20x world sequentially and with the
// full worker pool (workers=max, i.e. GOMAXPROCS); the ratio between the
// two sub-benchmarks is the engine's parallel speedup on this machine
// (DESIGN.md E2).
func BenchmarkSimRunScale(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchSimRun(b, sim.ScaleConfig(), 1) })
	b.Run("workers=max", func(b *testing.B) { benchSimRun(b, sim.ScaleConfig(), 0) })
}

// benchSimRunEvents replays the ~20x world with and without the
// event-sourced run log attached (DESIGN.md E6). The log drains into a
// buffered discard writer, so the measured delta is the engine-side cost
// the subsystem adds — per-unit event encoding plus the ordered barrier
// concatenation — independent of disk speed. events=off must match
// BenchmarkSimRunScale/workers=1 (the nil-writer paths compile to a
// branch), and events=on is the <5% overhead target.
func benchSimRunEvents(b *testing.B, events bool) {
	cfg := sim.ScaleConfig()
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cfg
		c.Seed += uint64(i)
		w, err := sim.NewWorld(c)
		if err != nil {
			b.Fatal(err)
		}
		var opts sim.RunOptions
		if events {
			runLog, err := w.NewRunLog(bufio.NewWriterSize(io.Discard, 1<<20))
			if err != nil {
				b.Fatal(err)
			}
			opts.Log = runLog
		}
		b.StartTimer()
		if _, err := w.RunOpts(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRunEvents(b *testing.B) {
	b.Run("events=off", func(b *testing.B) { benchSimRunEvents(b, false) })
	b.Run("events=on", func(b *testing.B) { benchSimRunEvents(b, true) })
}

// benchSimRunMetrics replays the ~20x world with and without the full
// observability surface attached (DESIGN.md E11): registry, every
// engine/run-loop histogram, and the run-phase tracer ring. Metrics take
// their timestamps only at day-phase boundaries (~8 time.Now calls per
// simulated day), so the metrics=on line must stay within 1% of
// metrics=off — benchjson derives metrics_on_off_overhead_pct from the
// recorded medians, and the E11 acceptance bar pins it below 1.
func benchSimRunMetrics(b *testing.B, metrics bool) {
	cfg := sim.ScaleConfig()
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := cfg
		c.Seed += uint64(i)
		w, err := sim.NewWorld(c)
		if err != nil {
			b.Fatal(err)
		}
		var opts sim.RunOptions
		if metrics {
			opts.Metrics = sim.NewMetrics(obs.NewRegistry(), obs.NewTracer(obs.DefaultTraceCap))
		}
		b.StartTimer()
		if _, err := w.RunOpts(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRunMetrics(b *testing.B) {
	b.Run("metrics=off", func(b *testing.B) { benchSimRunMetrics(b, false) })
	b.Run("metrics=on", func(b *testing.B) { benchSimRunMetrics(b, true) })
}

// seekBench lazily builds a segmented ~20x-world run log in memory (about
// a dozen 4MiB segments), shared by the seek benchmark's sub-benchmarks.
var seekBench struct {
	once sync.Once
	log  []byte
	err  error
}

func seekBenchLog(b *testing.B) []byte {
	b.Helper()
	seekBench.once.Do(func() {
		cfg := sim.ScaleConfig()
		cfg.Workers = 1
		w, err := sim.NewWorld(cfg)
		if err != nil {
			seekBench.err = err
			return
		}
		var buf bytes.Buffer
		runLog, err := w.NewRunLog(&buf)
		if err != nil {
			seekBench.err = err
			return
		}
		runLog.SetSegmentBytes(4 << 20)
		if _, err := w.RunOpts(sim.RunOptions{Log: runLog}); err != nil {
			seekBench.err = err
			return
		}
		seekBench.log = buf.Bytes()
	})
	if seekBench.err != nil {
		b.Fatal(seekBench.err)
	}
	return seekBench.log
}

// BenchmarkRunLogSeek times rebuilding the state at the last day of a
// month-scale segmented log two ways: a full verifying replay of every
// event, and ScanIndex + ReplayDay, which restores the last segment's
// embedded checkpoint and replays only that segment (DESIGN.md E8). The
// ratio is the seek speedup the v3 format buys; it grows linearly with
// the number of segments in the log.
func BenchmarkRunLogSeek(b *testing.B) {
	data := seekBenchLog(b)
	idx, err := stream.ScanIndex(bytes.NewReader(data))
	if err != nil {
		b.Fatal(err)
	}
	last, ok := idx.LastDay()
	if !ok || len(idx.Segments) < 2 {
		b.Fatalf("bench log unusable: lastDay=%v segments=%d", ok, len(idx.Segments))
	}
	b.Run("mode=full-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stream.Replay(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mode=seek-last-day", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stream.ReplayDay(bytes.NewReader(data), last); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreRecordParallel hammers the sharded write path from all
// procs at once; before sharding, every RecordInstallBatch serialized on
// one store-wide mutex (DESIGN.md E3).
func BenchmarkStoreRecordParallel(b *testing.B) {
	store := playstore.New(dates.StudyStart)
	store.AddDeveloper(playstore.Developer{ID: "d"})
	const apps = 512
	pkgs := make([]string, apps)
	for i := range pkgs {
		pkgs[i] = fmt.Sprintf("bench.app.n%04d", i)
		if err := store.Publish(playstore.Listing{
			Package: pkgs[i], Title: "B", Genre: "Puzzle", Developer: "d",
		}); err != nil {
			b.Fatal(err)
		}
	}
	var goroutineSeq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger goroutines across the package space so they mostly hit
		// different shards, the pattern the day engine produces.
		i := int(goroutineSeq.Add(1)) * 7919
		for pb.Next() {
			pkg := pkgs[i%apps]
			// b.Error, not b.Fatal: FailNow must not be called from
			// RunParallel worker goroutines.
			if err := store.RecordInstallBatch(pkg, dates.StudyStart, 3, playstore.SourceReferral, 0.3); err != nil {
				b.Error(err)
				return
			}
			if err := store.RecordSessionBatch(pkg, dates.StudyStart, 2, 120); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationClassifierRule vs ...Bayes compare the rule-based
// description classifier against the trained naive-Bayes variant.
func BenchmarkAblationClassifierRule(b *testing.B) {
	_, a := benchFixture(b)
	ds := a.RawOffers()
	cls := offers.RuleClassifier{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range ds {
			cls.Classify(o.Description)
		}
	}
}

func BenchmarkAblationClassifierBayes(b *testing.B) {
	_, a := benchFixture(b)
	ds := a.RawOffers()
	nb := offers.NewBayesClassifier()
	for _, o := range ds {
		nb.Train(o.Description, o.Truth)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range ds {
			nb.Classify(o.Description)
		}
	}
}

// Chart-scoring ablation: engagement-weighted (paper-faithful) vs
// installs-only ranking over a day's chart computation.
func benchChartScoring(b *testing.B, mode playstore.ChartScoring) {
	s, _ := benchFixture(b)
	s.World.Store.SetChartScoring(mode)
	defer s.World.Store.SetChartScoring(playstore.EngagementScoring)
	day := s.World.Cfg.Window.End
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.Store.StepDay(day)
	}
}

func BenchmarkAblationChartScoringEngagement(b *testing.B) {
	benchChartScoring(b, playstore.EngagementScoring)
}

func BenchmarkAblationChartScoringInstallsOnly(b *testing.B) {
	benchChartScoring(b, playstore.InstallsOnlyScoring)
}

// Proxy ablation: offer collection through the recording MITM proxy versus
// scraping the walls directly (no interception layer).
func BenchmarkAblationProxyVsDirect_Proxy(b *testing.B) {
	s, _ := benchFixture(b)
	day := s.World.Cfg.Window.End
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Milker.MilkDay(day); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProxyVsDirect_Direct(b *testing.B) {
	// A direct scrape against one live wall without the proxy hop.
	platform := iip.StandardPlatforms()[iip.Fyber]
	if err := platform.RegisterDeveloper("dev", iip.Documentation{TaxID: "T", BankAccount: "B"}); err != nil {
		b.Fatal(err)
	}
	if err := platform.Deposit("dev", 1e6); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := platform.LaunchCampaign(iip.CampaignSpec{
			Developer: "dev", AppPackage: "bench.app",
			Description: "Install and Launch", UserPayoutUSD: 0.06,
			Target: 10, Window: dates.Range{Start: dates.StudyStart, End: dates.StudyEnd},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := platform.ActiveOffers(dates.StudyStart, "USA"); len(got) != 40 {
			b.Fatal("wrong offer count")
		}
	}
}

// Enforcement ablation: detection sensitivity sweep over a bot-heavy
// install stream (subbenchmarks per sensitivity).
func BenchmarkAblationEnforcement(b *testing.B) {
	for _, sens := range []float64{0.0, 0.4, 1.0} {
		name := "sens=0.0"
		switch sens {
		case 0.4:
			name = "sens=0.4"
		case 1.0:
			name = "sens=1.0"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := playstore.New(dates.StudyStart)
				store.AddDeveloper(playstore.Developer{ID: "d"})
				if err := store.Publish(playstore.Listing{Package: "x", Title: "x", Genre: "Tools", Developer: "d"}); err != nil {
					b.Fatal(err)
				}
				store.SetEnforcer(playstore.NewEnforcer(randx.New(uint64(i)), sens))
				for d := 0; d < 30; d++ {
					day := dates.StudyStart.AddDays(d)
					if err := store.RecordInstallBatch("x", day, 80, playstore.SourceReferral, 0.9); err != nil {
						b.Fatal(err)
					}
					store.StepDay(day)
				}
			}
		})
	}
}

// BenchmarkMonitorParseWall isolates the offer-wall JSON parsing hot path.
func BenchmarkMonitorParseWall(b *testing.B) {
	rec := monitor.Record{
		Status:      200,
		ContentType: "application/json",
		Body: []byte(`{"network":"Fyber","affiliate":"com.ayet.cashpirate","country":"USA",` +
			`"offers":[{"offer_id":"f-1","app_package":"com.a.b","store_url":"https://play.google.com/store/apps/details?id=com.a.b",` +
			`"description":"Install and Register","points":340}]}`),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := monitor.ParseWall(rec); !ok {
			b.Fatal("parse failed")
		}
	}
}

// BenchmarkChiSquare isolates the statistical test.
func BenchmarkChiSquare(b *testing.B) {
	t := stats.Table2x2{A0: 294, A1: 6, B0: 431, B1: 61}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.ChiSquareIndependence(t); err != nil {
			b.Fatal(err)
		}
	}
}
